//! A textual assembler: parse assembly source into a [`Program`].
//!
//! Complements the programmatic [`Asm`] builder with a conventional
//! `.s`-style syntax so programs can live in files or string literals:
//!
//! ```text
//! ; a[i] = a[i-1] + k  (the paper's Figure 7 loop)
//! .alloc arr 512 8
//!         li   r3, arr
//!         li   r1, 1
//!         li   r2, 64
//!         li   r4, 3
//! top:    sll  r5, r1, 3
//!         add  r5, r3, r5
//!         lw   r6, -8(r5)
//!         add  r6, r6, r4
//!         sw   r6, 0(r5)
//!         addi r1, r1, 1
//!         slt  r7, r1, r2
//!         bgtz r7, top
//!         halt
//! ```
//!
//! Supported pieces: every mnemonic of [`Op`](crate::Op) (lowercase, FP
//! ops use `.` as in `add.d`), registers `r0..r31` / `f0..f31` plus the
//! aliases `zero`, `sp`, `ra`, memory operands as `disp(base)`,
//! `label:` definitions, `;` and `#` comments, and the data directives
//! `.alloc NAME SIZE ALIGN`, `.word ADDR-EXPR VALUE`,
//! `.dword ADDR-EXPR VALUE`, `.double ADDR-EXPR FLOAT`. An address
//! expression is `NAME`, `NAME+OFFSET` or a literal. Allocated names can
//! be used as immediates (e.g. `li r3, arr`).

use crate::asm::Asm;
use crate::reg::Reg;
use crate::Program;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses assembly source into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for unknown
/// mnemonics, malformed operands, duplicate or missing labels, and
/// malformed directives.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let mut a = Asm::new();
    let mut labels: HashMap<String, crate::asm::Label> = HashMap::new();
    let mut bound: HashMap<String, usize> = HashMap::new();
    let mut symbols: HashMap<String, u64> = HashMap::new();

    fn label_of(
        a: &mut Asm,
        labels: &mut HashMap<String, crate::asm::Label>,
        name: &str,
    ) -> crate::asm::Label {
        *labels.entry(name.to_string()).or_insert_with(|| a.label())
    }

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let dir = parts.next().unwrap_or("");
            let args: Vec<&str> = parts.collect();
            match dir {
                "alloc" => {
                    let [name, size, align] = args[..] else {
                        return Err(err(lineno, ".alloc NAME SIZE ALIGN"));
                    };
                    let size = parse_u64(size).ok_or_else(|| err(lineno, "bad size"))?;
                    let align = parse_u64(align).ok_or_else(|| err(lineno, "bad align"))?;
                    if !align.is_power_of_two() {
                        return Err(err(lineno, "alignment must be a power of two"));
                    }
                    let addr = a.alloc_data(size, align);
                    if symbols.insert(name.to_string(), addr).is_some() {
                        return Err(err(lineno, format!("duplicate symbol {name}")));
                    }
                }
                "word" | "dword" | "double" => {
                    let [addr, value] = args[..] else {
                        return Err(err(lineno, format!(".{dir} ADDR VALUE")));
                    };
                    let addr = parse_addr(addr, &symbols)
                        .ok_or_else(|| err(lineno, format!("bad address {addr}")))?;
                    match dir {
                        "word" => a.init_u32(
                            addr,
                            parse_u64(value).ok_or_else(|| err(lineno, "bad value"))? as u32,
                        ),
                        "dword" => a.init_u64(
                            addr,
                            parse_u64(value).ok_or_else(|| err(lineno, "bad value"))?,
                        ),
                        _ => a.init_f64(
                            addr,
                            value.parse::<f64>().map_err(|_| err(lineno, "bad float"))?,
                        ),
                    }
                }
                other => return Err(err(lineno, format!("unknown directive .{other}"))),
            }
            continue;
        }

        // Optional label prefix.
        let mut code = line;
        if let Some(colon) = line.find(':') {
            let (name, rest) = line.split_at(colon);
            let name = name.trim();
            if name.chars().all(|c| c.is_alphanumeric() || c == '_') && !name.is_empty() {
                if bound.insert(name.to_string(), lineno).is_some() {
                    return Err(err(lineno, format!("label {name} bound twice")));
                }
                let l = label_of(&mut a, &mut labels, name);
                a.bind(l);
                code = rest[1..].trim();
            }
        }
        if code.is_empty() {
            continue;
        }

        // Instruction: mnemonic + comma-separated operands.
        let (mnemonic, ops_str) = match code.find(char::is_whitespace) {
            Some(i) => (&code[..i], code[i..].trim()),
            None => (code, ""),
        };
        let ops: Vec<&str> = if ops_str.is_empty() {
            Vec::new()
        } else {
            ops_str.split(',').map(str::trim).collect()
        };
        emit(&mut a, &mut labels, &symbols, mnemonic, &ops, lineno)?;
    }

    // Every referenced label must be bound.
    for name in labels.keys() {
        if !bound.contains_key(name) {
            return Err(err(0, format!("label {name} referenced but never defined")));
        }
    }

    a.assemble().map_err(|e| err(0, e.to_string()))
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_i64(s: &str, symbols: &HashMap<String, u64>) -> Option<i64> {
    if let Some(&sym) = symbols.get(s) {
        return Some(sym as i64);
    }
    if let Some(rest) = s.strip_prefix('-') {
        return Some(-(parse_u64(rest)? as i64));
    }
    parse_u64(s).map(|v| v as i64)
}

fn parse_addr(s: &str, symbols: &HashMap<String, u64>) -> Option<u64> {
    if let Some((name, off)) = s.split_once('+') {
        let base = symbols.get(name.trim()).copied()?;
        return Some(base + parse_u64(off.trim())?);
    }
    symbols.get(s).copied().or_else(|| parse_u64(s))
}

fn parse_reg(s: &str) -> Option<Reg> {
    match s {
        "zero" => return Some(Reg::ZERO),
        "sp" => return Some(Reg::SP),
        "ra" => return Some(Reg::RA),
        _ => {}
    }
    let (kind, n) = s.split_at(1);
    let n: u8 = n.parse().ok()?;
    match kind {
        "r" if n < 32 => Some(Reg::int(n)),
        "f" if n < 32 => Some(Reg::fp(n)),
        _ => None,
    }
}

/// Parses `disp(base)`.
fn parse_mem(s: &str) -> Option<(i64, Reg)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    let disp = s[..open].trim();
    let disp = if disp.is_empty() {
        0
    } else if let Some(rest) = disp.strip_prefix('-') {
        -(parse_u64(rest)? as i64)
    } else {
        parse_u64(disp)? as i64
    };
    let base = parse_reg(s[open + 1..close].trim())?;
    Some((disp, base))
}

#[allow(clippy::too_many_lines)] // a flat mnemonic dispatch table
fn emit(
    a: &mut Asm,
    labels: &mut HashMap<String, crate::asm::Label>,
    symbols: &HashMap<String, u64>,
    mnemonic: &str,
    ops: &[&str],
    line: usize,
) -> Result<(), ParseError> {
    let reg = |s: &str| parse_reg(s).ok_or_else(|| err(line, format!("bad register {s}")));
    let imm =
        |s: &str| parse_i64(s, symbols).ok_or_else(|| err(line, format!("bad immediate {s}")));
    let mem = |s: &str| parse_mem(s).ok_or_else(|| err(line, format!("bad memory operand {s}")));
    let arity = |want: usize| {
        if ops.len() == want {
            Ok(())
        } else {
            Err(err(
                line,
                format!("{mnemonic} expects {want} operands, got {}", ops.len()),
            ))
        }
    };
    let label = |a: &mut Asm, labels: &mut HashMap<String, crate::asm::Label>, s: &str| {
        *labels.entry(s.to_string()).or_insert_with(|| a.label())
    };

    match mnemonic {
        // rd, rs, rt
        "add" | "sub" | "and" | "or" | "xor" | "nor" | "sllv" | "srlv" | "srav" | "slt"
        | "sltu" | "add.d" | "sub.d" | "mul.d" | "div.d" | "add.s" | "sub.s" | "mul.s"
        | "div.s" => {
            arity(3)?;
            let (rd, rs, rt) = (reg(ops[0])?, reg(ops[1])?, reg(ops[2])?);
            match mnemonic {
                "add" => a.add(rd, rs, rt),
                "sub" => a.sub(rd, rs, rt),
                "and" => a.and(rd, rs, rt),
                "or" => a.or(rd, rs, rt),
                "xor" => a.xor(rd, rs, rt),
                "nor" => a.nor(rd, rs, rt),
                "sllv" => a.sllv(rd, rs, rt),
                "srlv" => a.srlv(rd, rs, rt),
                "srav" => a.srav(rd, rs, rt),
                "slt" => a.slt(rd, rs, rt),
                "sltu" => a.sltu(rd, rs, rt),
                "add.d" => a.add_d(rd, rs, rt),
                "sub.d" => a.sub_d(rd, rs, rt),
                "mul.d" => a.mul_d(rd, rs, rt),
                "div.d" => a.div_d(rd, rs, rt),
                "add.s" => a.add_s(rd, rs, rt),
                "sub.s" => a.sub_s(rd, rs, rt),
                "mul.s" => a.mul_s(rd, rs, rt),
                _ => a.div_s(rd, rs, rt),
            }
        }
        // rd, rs, imm
        "addi" | "andi" | "ori" | "xori" | "slti" | "sltiu" | "sll" | "srl" | "sra" => {
            arity(3)?;
            let (rd, rs, v) = (reg(ops[0])?, reg(ops[1])?, imm(ops[2])?);
            match mnemonic {
                "addi" => a.addi(rd, rs, v),
                "andi" => a.andi(rd, rs, v),
                "ori" => a.ori(rd, rs, v),
                "xori" => a.xori(rd, rs, v),
                "slti" => a.slti(rd, rs, v),
                "sltiu" => a.sltiu(rd, rs, v),
                "sll" => a.sll(rd, rs, v),
                "srl" => a.srl(rd, rs, v),
                _ => a.sra(rd, rs, v),
            }
        }
        "li" => {
            arity(2)?;
            a.li(reg(ops[0])?, imm(ops[1])?);
        }
        "mov" => {
            arity(2)?;
            a.mov(reg(ops[0])?, reg(ops[1])?);
        }
        "lui" => {
            arity(2)?;
            a.lui(reg(ops[0])?, imm(ops[1])?);
        }
        "mult" | "multu" | "div" | "divu" => {
            arity(2)?;
            let (rs, rt) = (reg(ops[0])?, reg(ops[1])?);
            match mnemonic {
                "mult" => a.mult(rs, rt),
                "multu" => a.multu(rs, rt),
                "div" => a.div(rs, rt),
                _ => a.divu(rs, rt),
            }
        }
        "mfhi" => {
            arity(1)?;
            a.mfhi(reg(ops[0])?);
        }
        "mflo" => {
            arity(1)?;
            a.mflo(reg(ops[0])?);
        }
        // reg, disp(base)
        "lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw" | "lwc1" | "swc1" | "ldc1"
        | "sdc1" => {
            arity(2)?;
            let r = reg(ops[0])?;
            let (disp, base) = mem(ops[1])?;
            match mnemonic {
                "lb" => a.lb(r, base, disp),
                "lbu" => a.lbu(r, base, disp),
                "lh" => a.lh(r, base, disp),
                "lhu" => a.lhu(r, base, disp),
                "lw" => a.lw(r, base, disp),
                "sb" => a.sb(r, base, disp),
                "sh" => a.sh(r, base, disp),
                "sw" => a.sw(r, base, disp),
                "lwc1" => a.lwc1(r, base, disp),
                "swc1" => a.swc1(r, base, disp),
                "ldc1" => a.ldc1(r, base, disp),
                _ => a.sdc1(r, base, disp),
            }
        }
        "c.lt.d" | "c.eq.d" => {
            arity(2)?;
            let (fs, ft) = (reg(ops[0])?, reg(ops[1])?);
            if mnemonic == "c.lt.d" {
                a.c_lt_d(fs, ft);
            } else {
                a.c_eq_d(fs, ft);
            }
        }
        "cvt.d.w" | "cvt.w.d" | "mov.d" | "neg.d" | "abs.d" => {
            arity(2)?;
            let (fd, fs) = (reg(ops[0])?, reg(ops[1])?);
            match mnemonic {
                "cvt.d.w" => a.cvt_d_w(fd, fs),
                "cvt.w.d" => a.cvt_w_d(fd, fs),
                "mov.d" => a.mov_d(fd, fs),
                "neg.d" => a.neg_d(fd, fs),
                _ => a.abs_d(fd, fs),
            }
        }
        "beq" | "bne" => {
            arity(3)?;
            let (rs, rt) = (reg(ops[0])?, reg(ops[1])?);
            let l = label(a, labels, ops[2]);
            if mnemonic == "beq" {
                a.beq(rs, rt, l);
            } else {
                a.bne(rs, rt, l);
            }
        }
        "blez" | "bgtz" | "bltz" | "bgez" => {
            arity(2)?;
            let rs = reg(ops[0])?;
            let l = label(a, labels, ops[1]);
            match mnemonic {
                "blez" => a.blez(rs, l),
                "bgtz" => a.bgtz(rs, l),
                "bltz" => a.bltz(rs, l),
                _ => a.bgez(rs, l),
            }
        }
        "bc1t" | "bc1f" => {
            arity(1)?;
            let l = label(a, labels, ops[0]);
            if mnemonic == "bc1t" {
                a.bc1t(l);
            } else {
                a.bc1f(l);
            }
        }
        "j" | "jal" => {
            arity(1)?;
            let l = label(a, labels, ops[0]);
            if mnemonic == "j" {
                a.j(l);
            } else {
                a.jal(l);
            }
        }
        "jr" => {
            arity(1)?;
            a.jr(reg(ops[0])?);
        }
        "jalr" => {
            arity(1)?;
            a.jalr(reg(ops[0])?);
        }
        "nop" => {
            arity(0)?;
            a.nop();
        }
        "halt" => {
            arity(0)?;
            a.halt();
        }
        other => return Err(err(line, format!("unknown mnemonic {other}"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;

    fn run(src: &str) -> crate::Trace {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        Interpreter::new(p).run(100_000).unwrap()
    }

    #[test]
    fn figure7_loop_parses_and_runs() {
        let t = run("\
; Figure 7: a[i] = a[i-1] + k
.alloc arr 512 8
        li   r3, arr
        li   r1, 1
        li   r2, 64
        li   r4, 3
top:    sll  r5, r1, 3
        add  r5, r3, r5
        lw   r6, -8(r5)
        add  r6, r6, r4
        sw   r6, 0(r5)
        addi r1, r1, 1
        slt  r7, r1, r2
        bgtz r7, top
        halt
");
        assert!(t.completed());
        assert_eq!(t.counts().loads, 63);
        assert_eq!(t.counts().stores, 63);
    }

    #[test]
    fn data_directives_initialize_memory() {
        let t = run("\
.alloc buf 64 8
.word  buf 42
.dword buf+8 1234567890123
.double buf+16 2.5
        li   r1, buf
        lw   r2, 0(r1)
        ldc1 f0, 16(r1)
        add.d f1, f0, f0
        sdc1 f1, 24(r1)
        halt
");
        let store = t
            .records()
            .iter()
            .find(|r| t.program().inst(r.sidx).op.is_store())
            .unwrap();
        assert_eq!(f64::from_bits(store.value), 5.0);
        let load = t
            .records()
            .iter()
            .find(|r| t.program().inst(r.sidx).op == crate::Op::Lw)
            .unwrap();
        assert_eq!(load.value, 42);
    }

    #[test]
    fn register_aliases() {
        let t = run("\
        li   sp, 0x10001000
        addi sp, sp, -16
        sw   zero, 0(sp)
        lw   r2, 0(sp)
        halt
");
        assert_eq!(t.counts().stores, 1);
    }

    #[test]
    fn calls_and_returns() {
        let t = run("\
        jal  f
        j    done
f:      addi r9, r9, 1
        jr   ra
done:   halt
");
        assert!(t.completed());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = run("\n# full comment\n   ; another\n  halt ; trailing\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = parse_program("  nop\n  frobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn bad_register_reports_line() {
        let e = parse_program("  add r1, r2, r99\n  halt\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("r99"));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = parse_program("  j nowhere\n  halt\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = parse_program("x: nop\nx: nop\nhalt\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bound twice"));
    }

    #[test]
    fn duplicate_symbol_is_an_error() {
        let e = parse_program(".alloc b 8 8\n.alloc b 8 8\nhalt\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn arity_errors_name_the_mnemonic() {
        let e = parse_program("  add r1, r2\n  halt\n").unwrap_err();
        assert!(e.message.contains("add expects 3"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let t = run("  li r1, 0xff\n  addi r1, r1, -0x10\n  halt\n");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn fp_compare_and_branch_syntax() {
        let t = run("\
.alloc d 16 8
.double d 1.5
        li   r1, d
        ldc1 f0, 0(r1)
        ldc1 f1, 0(r1)
        c.eq.d f0, f1
        bc1t yes
        nop
yes:    halt
");
        assert!(t.completed());
    }
}
