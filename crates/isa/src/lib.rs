//! # mds-isa — instruction set, assembler, and functional interpreter
//!
//! The ISA substrate of the `mds` simulator, a reproduction of Moshovos &
//! Sohi, *"Memory Dependence Speculation Tradeoffs in Centralized,
//! Continuous-Window Superscalar Processors"* (HPCA 2000).
//!
//! The paper ran SPEC'95 binaries compiled for MIPS-I; this crate provides
//! the equivalent substrate built from scratch: a MIPS-like RISC ISA
//! ([`Op`], [`Instruction`], [`Reg`]), a program builder ([`Asm`]), a sparse
//! data memory ([`MemImage`]), and a functional [`Interpreter`] that
//! executes programs and emits the correct-path dynamic [`Trace`] the
//! timing core replays.
//!
//! # Examples
//!
//! Assemble and execute the paper's Figure 7 recurrence loop
//! (`a[i] = a[i-1] + k`):
//!
//! ```
//! use mds_isa::{Asm, Interpreter, Reg};
//!
//! let mut a = Asm::new();
//! let arr = a.alloc_data(8 * 64, 8);
//! let (i, n, base, k, t) =
//!     (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
//! a.li(i, 1);
//! a.li(n, 64);
//! a.li(base, arr as i64);
//! a.li(k, 3);
//! let top = a.label();
//! a.bind(top);
//! a.sll(t, i, 3); // i * 8
//! a.add(t, base, t);
//! a.lw(Reg::int(6), t, -8); // load a[i-1]
//! a.add(Reg::int(6), Reg::int(6), k);
//! a.sw(Reg::int(6), t, 0); // store a[i]
//! a.addi(i, i, 1);
//! a.slt(Reg::int(7), i, n);
//! a.bgtz(Reg::int(7), top);
//! a.halt();
//!
//! let trace = Interpreter::new(a.assemble()?).run(10_000)?;
//! assert!(trace.completed());
//! assert_eq!(trace.counts().loads, 63);
//! assert_eq!(trace.counts().stores, 63);
//! # Ok::<(), mds_isa::IsaError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod asm;
mod error;
mod inst;
mod interp;
mod mem;
mod op;
#[cfg(test)]
mod op_semantics_tests;
mod parse;
mod reg;
mod trace;

pub use asm::{Asm, Label, Program, DATA_BASE, TEXT_BASE};
pub use error::IsaError;
pub use inst::Instruction;
pub use interp::{ArchState, Interpreter};
pub use mem::MemImage;
pub use op::{FuClass, MemWidth, Op};
pub use parse::{parse_program, ParseError};
pub use reg::{Reg, NUM_FP_REGS, NUM_INT_REGS, NUM_REGS};
pub use trace::{Trace, TraceCounts, TraceRecord};
