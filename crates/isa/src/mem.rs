//! Sparse byte-addressable data memory image.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, paged, little-endian memory image.
///
/// Unwritten memory reads as zero. Pages are 4 KiB and allocated on first
/// write, so images covering scattered gigabyte-scale address ranges stay
/// small.
///
/// # Examples
///
/// ```
/// use mds_isa::MemImage;
///
/// let mut m = MemImage::new();
/// m.write_u32(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u32(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x1000), 0xef); // little-endian
/// assert_eq!(m.read_u64(0x9999_0000), 0); // untouched memory is zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MemImage {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> MemImage {
        MemImage::default()
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `size` bytes (1, 2, 4 or 8) little-endian, zero-extended to `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        let mut v = 0u64;
        for i in 0..size as u64 {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes (1, 2, 4 or 8) of `value`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn write(&mut self, addr: u64, size: u8, value: u64) {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        for i in 0..size as u64 {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 16-bit little-endian value.
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read(addr, 2) as u16
    }

    /// Reads a 32-bit little-endian value.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read(addr, 4) as u32
    }

    /// Reads a 64-bit little-endian value.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes a 16-bit little-endian value.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write(addr, 2, value as u64);
    }

    /// Writes a 32-bit little-endian value.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write(addr, 4, value as u64);
    }

    /// Writes a 64-bit little-endian value.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, 8, value);
    }

    /// Writes an `f64` as its bit pattern.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads an `f64` from its bit pattern.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = MemImage::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = MemImage::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 0x01);
        assert_eq!(m.read_u8(0x103), 0x04);
        assert_eq!(m.read_u16(0x100), 0x0201);
        assert_eq!(m.read_u32(0x100), 0x0403_0201);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MemImage::new();
        let addr = PAGE_SIZE as u64 - 4; // straddles the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = MemImage::new();
        m.write_u64(0x200, u64::MAX);
        m.write_u8(0x203, 0);
        assert_eq!(m.read_u64(0x200), 0xffff_ffff_00ff_ffff);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = MemImage::new();
        m.write_f64(0x80, 3.25);
        assert_eq!(m.read_f64(0x80), 3.25);
    }

    #[test]
    fn write_bytes_copies() {
        let mut m = MemImage::new();
        m.write_bytes(0x10, &[1, 2, 3]);
        assert_eq!(m.read_u8(0x10), 1);
        assert_eq!(m.read_u8(0x12), 3);
    }

    #[test]
    #[should_panic]
    fn bad_size_panics() {
        let m = MemImage::new();
        let _ = m.read(0, 3);
    }
}
