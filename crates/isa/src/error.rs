//! Error types of the ISA crate.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling or interpreting programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A referenced label was never bound to a position.
    UnboundLabel(u32),
    /// The program contains no instructions.
    EmptyProgram,
    /// Control transferred outside the text segment.
    PcOutOfRange {
        /// The offending static index.
        sidx: u64,
    },
    /// A register-indirect jump used a value that is not a valid
    /// instruction address.
    BadJumpTarget {
        /// The offending register value.
        value: u64,
    },
    /// Execution ran past the interpreter's dynamic instruction limit
    /// without reaching `halt`.
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnboundLabel(id) => write!(f, "label {id} referenced but never bound"),
            IsaError::EmptyProgram => write!(f, "program has no instructions"),
            IsaError::PcOutOfRange { sidx } => {
                write!(f, "control transferred outside the program (index {sidx})")
            }
            IsaError::BadJumpTarget { value } => {
                write!(f, "indirect jump to invalid instruction address {value:#x}")
            }
            IsaError::StepLimit { limit } => {
                write!(
                    f,
                    "execution exceeded {limit} dynamic instructions without halting"
                )
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        for e in [
            IsaError::UnboundLabel(3),
            IsaError::EmptyProgram,
            IsaError::PcOutOfRange { sidx: 10 },
            IsaError::BadJumpTarget { value: 1 },
            IsaError::StepLimit { limit: 5 },
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
