//! Exhaustive semantic tests for individual operations, exercised
//! through the interpreter and observed through store trace records.

#![cfg(test)]

use crate::{Asm, Interpreter, Reg, Trace};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

/// Runs `build` with an output buffer base in `r30`, returning the store
/// records' values in emission order.
fn run_and_stores(build: impl FnOnce(&mut Asm, Reg)) -> Vec<u64> {
    let mut a = Asm::new();
    let out = a.alloc_data(256, 8);
    let base = r(30);
    a.li(base, out as i64);
    build(&mut a, base);
    a.halt();
    let t = Interpreter::new(a.assemble().unwrap())
        .run(100_000)
        .unwrap();
    assert!(t.completed());
    stores_of(&t)
}

fn stores_of(t: &Trace) -> Vec<u64> {
    t.records()
        .iter()
        .filter(|rec| t.program().inst(rec.sidx).op.is_store())
        .map(|rec| rec.value)
        .collect()
}

#[test]
fn shift_immediates() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), 0x8000_0001u32 as i64);
        a.sll(r(2), r(1), 4);
        a.srl(r(3), r(1), 4);
        a.sra(r(4), r(1), 4);
        a.sw(r(2), base, 0);
        a.sw(r(3), base, 4);
        a.sw(r(4), base, 8);
    });
    // r1 = 0x0000_0000_8000_0001 (the u32 constant is positive as i64).
    assert_eq!(v[0], 0x0000_0010); // low 32 bits of << 4
    assert_eq!(v[1], 0x0800_0000); // 64-bit logical shift right, low 32
    assert_eq!(v[2], 0x0800_0000); // arithmetic shift of a positive value
}

#[test]
fn variable_shifts() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), 1);
        a.li(r(2), 12);
        a.sllv(r(3), r(1), r(2));
        a.srlv(r(4), r(3), r(2));
        a.sw(r(3), base, 0);
        a.sw(r(4), base, 4);
    });
    assert_eq!(v[0], 1 << 12);
    assert_eq!(v[1], 1);
}

#[test]
fn set_less_than_signed_and_unsigned() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), -1);
        a.li(r(2), 1);
        a.slt(r(3), r(1), r(2)); // -1 < 1 -> 1
        a.sltu(r(4), r(1), r(2)); // 0xffff.. < 1 -> 0
        a.slti(r(5), r(1), 0); // -1 < 0 -> 1
        a.sltiu(r(6), r(2), 2); // 1 < 2 -> 1
        a.sw(r(3), base, 0);
        a.sw(r(4), base, 4);
        a.sw(r(5), base, 8);
        a.sw(r(6), base, 12);
    });
    assert_eq!(v, vec![1, 0, 1, 1]);
}

#[test]
fn logic_immediates() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), 0b1100);
        a.andi(r(2), r(1), 0b1010);
        a.ori(r(3), r(1), 0b0011);
        a.xori(r(4), r(1), 0b1111);
        a.nor(r(5), r(1), r(1));
        a.sw(r(2), base, 0);
        a.sw(r(3), base, 4);
        a.sw(r(4), base, 8);
        a.sw(r(5), base, 12);
    });
    assert_eq!(v[0], 0b1000);
    assert_eq!(v[1], 0b1111);
    assert_eq!(v[2], 0b0011);
    assert_eq!(v[3] & 0xffff_ffff, !0b1100u32 as u64);
}

#[test]
fn lui_places_upper_bits() {
    let v = run_and_stores(|a, base| {
        a.lui(r(1), 0x1234);
        a.sw(r(1), base, 0);
    });
    assert_eq!(v[0], 0x1234_0000);
}

#[test]
fn unsigned_multiply_and_divide() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), -2); // 0xfffff...fe
        a.li(r(2), 3);
        a.multu(r(1), r(2));
        a.mflo(r(3)); // low 64 bits of huge product
        a.divu(r(1), r(2));
        a.mflo(r(4));
        a.mfhi(r(5));
        a.sw(r(3), base, 0);
        a.sw(r(4), base, 4);
        a.sw(r(5), base, 8);
    });
    let big = (-2i64) as u64;
    assert_eq!(v[0], big.wrapping_mul(3) & 0xffff_ffff);
    assert_eq!(v[1], (big / 3) & 0xffff_ffff);
    assert_eq!(v[2], (big % 3) & 0xffff_ffff);
}

#[test]
fn signed_divide_quotient_and_remainder() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), -7);
        a.li(r(2), 2);
        a.div(r(1), r(2));
        a.mflo(r(3)); // -3
        a.mfhi(r(4)); // -1
        a.sw(r(3), base, 0);
        a.sw(r(4), base, 4);
    });
    assert_eq!(v[0], (-3i32) as u32 as u64);
    assert_eq!(v[1], (-1i32) as u32 as u64);
}

#[test]
fn halfword_and_byte_stores_mask() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), 0x1_2345_6789);
        a.sb(r(1), base, 0);
        a.sh(r(1), base, 8);
    });
    assert_eq!(v[0], 0x89);
    assert_eq!(v[1], 0x6789);
}

#[test]
fn halfword_loads_extend_correctly() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), 0xFFFE);
        a.sh(r(1), base, 32);
        a.lh(r(2), base, 32); // sign-extend: -2
        a.lhu(r(3), base, 32); // zero-extend: 0xfffe
        a.sw(r(2), base, 0);
        a.sw(r(3), base, 4);
    });
    assert_eq!(v[1], 0xffff_fffe); // -2 masked to 32 bits
    assert_eq!(v[2], 0xfffe);
}

#[test]
fn single_precision_fp_roundtrip() {
    let v = run_and_stores(|a, base| {
        // Build 2.5f32 in memory, load with lwc1, add, store with swc1.
        let bits = 2.5f32.to_bits();
        a.li(r(1), bits as i64);
        a.sw(r(1), base, 64);
        a.lwc1(Reg::fp(0), base, 64);
        a.add_s(Reg::fp(1), Reg::fp(0), Reg::fp(0));
        a.swc1(Reg::fp(1), base, 0);
    });
    assert_eq!(f32::from_bits(v.last().copied().unwrap() as u32), 5.0);
}

#[test]
fn double_negate_abs() {
    let mut a = Asm::new();
    let out = a.alloc_data(64, 8);
    let data = a.alloc_data(8, 8);
    a.init_f64(data, 3.5);
    let base = r(30);
    a.li(base, out as i64);
    a.li(r(1), data as i64);
    a.ldc1(Reg::fp(0), r(1), 0);
    a.neg_d(Reg::fp(1), Reg::fp(0));
    a.abs_d(Reg::fp(2), Reg::fp(1));
    a.sdc1(Reg::fp(1), base, 0);
    a.sdc1(Reg::fp(2), base, 8);
    a.halt();
    let t = Interpreter::new(a.assemble().unwrap()).run(1000).unwrap();
    let v = stores_of(&t);
    assert_eq!(f64::from_bits(v[0]), -3.5);
    assert_eq!(f64::from_bits(v[1]), 3.5);
}

#[test]
fn convert_word_to_double_and_back() {
    let v = run_and_stores(|a, base| {
        a.li(r(1), 42);
        a.sw(r(1), base, 64);
        a.lwc1(Reg::fp(0), base, 64); // raw bits 42 in the register
        a.cvt_d_w(Reg::fp(1), Reg::fp(0)); // 42.0
        a.cvt_w_d(Reg::fp(2), Reg::fp(1)); // back to integer bits
        a.sdc1(Reg::fp(1), base, 0);
        a.swc1(Reg::fp(2), base, 8);
    });
    assert_eq!(f64::from_bits(v[1]), 42.0);
    assert_eq!(v[2], 42);
}

#[test]
fn branch_directions() {
    // Each branch either skips a marker store or not; collect markers.
    let v = run_and_stores(|a, base| {
        a.li(r(1), -5);
        a.li(r(2), 5);
        let l1 = a.label();
        a.bltz(r(1), l1); // taken
        a.sw(r(2), base, 0); // skipped
        a.bind(l1);
        let l2 = a.label();
        a.bgez(r(1), l2); // not taken
        a.sw(r(2), base, 4); // executed
        a.bind(l2);
        let l3 = a.label();
        a.blez(r(1), l3); // taken
        a.sw(r(2), base, 8); // skipped
        a.bind(l3);
        let l4 = a.label();
        a.bgtz(r(2), l4); // taken
        a.sw(r(2), base, 12); // skipped
        a.bind(l4);
    });
    assert_eq!(v.len(), 1, "only the bgez fall-through store executes");
}

#[test]
fn nested_calls_via_jalr() {
    let mut a = Asm::new();
    let out = a.alloc_data(16, 8);
    let base = r(30);
    a.li(base, out as i64);
    let f = a.label();
    let done = a.label();
    // main: r9 = &f; jalr r9; store marker; done
    a.jal(f); // direct call first
    a.addi(r(8), r(8), 100);
    a.sw(r(8), base, 0);
    a.j(done);
    a.bind(f);
    a.addi(r(8), r(8), 1);
    a.jr(Reg::RA);
    a.bind(done);
    a.halt();
    let t = Interpreter::new(a.assemble().unwrap()).run(1000).unwrap();
    let v = stores_of(&t);
    assert_eq!(v[0], 101);
}

#[test]
fn trace_counts_classify_all_categories() {
    let mut a = Asm::new();
    let out = a.alloc_data(64, 8);
    a.li(r(30), out as i64);
    a.li(r(1), 2);
    let top = a.label();
    a.bind(top);
    a.sw(r(1), r(30), 0);
    a.lw(r(2), r(30), 0);
    a.addi(r(1), r(1), -1);
    a.bgtz(r(1), top);
    a.halt();
    let t = Interpreter::new(a.assemble().unwrap()).run(1000).unwrap();
    let c = t.counts();
    assert_eq!(c.loads, 2);
    assert_eq!(c.stores, 2);
    assert_eq!(c.branches, 2);
    assert_eq!(c.taken_branches, 1);
    assert_eq!(c.total, t.len() as u64);
}
