//! Static instruction representation.

use crate::op::{MemWidth, Op};
use crate::reg::Reg;
use std::fmt;

/// A static instruction: an [`Op`] plus its register and immediate operands.
///
/// The encoding follows MIPS conventions loosely: `rd` is the destination,
/// `rs`/`rt` the sources, `imm` the sign-extended immediate (also used as
/// the load/store displacement), and `target` the static index of a branch
/// or jump target within the program.
///
/// # Examples
///
/// ```
/// use mds_isa::{Instruction, Op, Reg};
///
/// let add = Instruction::rrr(Op::Add, Reg::int(3), Reg::int(1), Reg::int(2));
/// assert_eq!(add.dst_regs(), vec![Reg::int(3)]);
/// assert_eq!(add.src_regs(), vec![Reg::int(1), Reg::int(2)]);
///
/// let lw = Instruction::mem(Op::Lw, Reg::int(4), Reg::int(29), 16);
/// assert!(lw.op.is_load());
/// assert_eq!(lw.base_reg(), Some(Reg::int(29)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub op: Op,
    /// Destination register, if any.
    pub rd: Option<Reg>,
    /// First source register, if any. For memory operations this is the
    /// address base register.
    pub rs: Option<Reg>,
    /// Second source register, if any. For stores this is the data register.
    pub rt: Option<Reg>,
    /// Immediate operand (sign-extended); displacement for memory ops,
    /// shift amount for shifts, constant for ALU-immediate forms.
    pub imm: i64,
    /// Static index of the branch/jump target instruction, if any.
    pub target: Option<u32>,
}

impl Instruction {
    /// Three-register ALU instruction: `rd <- rs op rt`.
    pub fn rrr(op: Op, rd: Reg, rs: Reg, rt: Reg) -> Instruction {
        Instruction {
            op,
            rd: Some(rd),
            rs: Some(rs),
            rt: Some(rt),
            imm: 0,
            target: None,
        }
    }

    /// Register-immediate ALU instruction: `rd <- rs op imm`.
    pub fn rri(op: Op, rd: Reg, rs: Reg, imm: i64) -> Instruction {
        Instruction {
            op,
            rd: Some(rd),
            rs: Some(rs),
            rt: None,
            imm,
            target: None,
        }
    }

    /// Memory instruction: `reg <- mem[base + disp]` or `mem[base + disp] <- reg`.
    ///
    /// For loads, `reg` is the destination; for stores it is the data source.
    pub fn mem(op: Op, reg: Reg, base: Reg, disp: i64) -> Instruction {
        debug_assert!(op.is_mem(), "Instruction::mem used with non-memory op {op}");
        if op.is_load() {
            Instruction {
                op,
                rd: Some(reg),
                rs: Some(base),
                rt: None,
                imm: disp,
                target: None,
            }
        } else {
            Instruction {
                op,
                rd: None,
                rs: Some(base),
                rt: Some(reg),
                imm: disp,
                target: None,
            }
        }
    }

    /// Conditional branch comparing `rs` (and `rt` for `beq`/`bne`) against
    /// zero, targeting static index `target`.
    pub fn branch(op: Op, rs: Option<Reg>, rt: Option<Reg>, target: u32) -> Instruction {
        debug_assert!(op.is_cond_branch(), "Instruction::branch used with {op}");
        Instruction {
            op,
            rd: None,
            rs,
            rt,
            imm: 0,
            target: Some(target),
        }
    }

    /// A no-operation instruction.
    pub fn nop() -> Instruction {
        Instruction {
            op: Op::Nop,
            rd: None,
            rs: None,
            rt: None,
            imm: 0,
            target: None,
        }
    }

    /// The program-terminating instruction.
    pub fn halt() -> Instruction {
        Instruction {
            op: Op::Halt,
            rd: None,
            rs: None,
            rt: None,
            imm: 0,
            target: None,
        }
    }

    /// Source registers read by this instruction, excluding the hard-wired
    /// zero register (which is always ready and never creates a dependence).
    pub fn src_regs(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        let mut push = |r: Option<Reg>| {
            if let Some(r) = r {
                if !r.is_zero() {
                    v.push(r);
                }
            }
        };
        push(self.rs);
        push(self.rt);
        // HI/LO moves and FP-condition branches read special registers.
        match self.op {
            Op::Mfhi => push(Some(Reg::HI)),
            Op::Mflo => push(Some(Reg::LO)),
            Op::Bc1t | Op::Bc1f => push(Some(Reg::FSR)),
            _ => {}
        }
        v
    }

    /// Destination registers written by this instruction, excluding the
    /// hard-wired zero register (writes to it are discarded).
    pub fn dst_regs(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match self.op {
            Op::Mult | Op::Multu | Op::Div | Op::Divu => {
                v.push(Reg::HI);
                v.push(Reg::LO);
            }
            Op::CLtD | Op::CEqD => v.push(Reg::FSR),
            Op::Jal | Op::Jalr => v.push(Reg::RA),
            _ => {
                if let Some(rd) = self.rd {
                    if !rd.is_zero() {
                        v.push(rd);
                    }
                }
            }
        }
        v
    }

    /// The address base register of a memory operation.
    pub fn base_reg(&self) -> Option<Reg> {
        if self.op.is_mem() {
            self.rs
        } else {
            None
        }
    }

    /// The data register of a store (the value to be written).
    pub fn store_data_reg(&self) -> Option<Reg> {
        if self.op.is_store() {
            self.rt
        } else {
            None
        }
    }

    /// Memory access width, for loads and stores.
    pub fn mem_width(&self) -> Option<MemWidth> {
        self.op.mem_width()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(rd) = self.rd {
            write!(f, " {rd}")?;
        }
        if let Some(rs) = self.rs {
            write!(f, " {rs}")?;
        }
        if let Some(rt) = self.rt {
            write!(f, " {rt}")?;
        }
        if self.imm != 0 || self.op.is_mem() {
            write!(f, " #{}", self.imm)?;
        }
        if let Some(t) = self.target {
            write!(f, " ->{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_sources_and_dests() {
        let i = Instruction::rrr(Op::Add, Reg::int(3), Reg::int(1), Reg::int(2));
        assert_eq!(i.src_regs(), vec![Reg::int(1), Reg::int(2)]);
        assert_eq!(i.dst_regs(), vec![Reg::int(3)]);
        assert_eq!(i.base_reg(), None);
    }

    #[test]
    fn zero_register_is_never_a_dependence() {
        let i = Instruction::rrr(Op::Add, Reg::ZERO, Reg::ZERO, Reg::int(2));
        assert_eq!(i.src_regs(), vec![Reg::int(2)]);
        assert!(i.dst_regs().is_empty());
    }

    #[test]
    fn load_operands() {
        let i = Instruction::mem(Op::Lw, Reg::int(4), Reg::int(29), -8);
        assert_eq!(i.base_reg(), Some(Reg::int(29)));
        assert_eq!(i.dst_regs(), vec![Reg::int(4)]);
        assert_eq!(i.src_regs(), vec![Reg::int(29)]);
        assert_eq!(i.store_data_reg(), None);
    }

    #[test]
    fn store_operands() {
        let i = Instruction::mem(Op::Sw, Reg::int(4), Reg::int(29), 12);
        assert_eq!(i.base_reg(), Some(Reg::int(29)));
        assert_eq!(i.store_data_reg(), Some(Reg::int(4)));
        assert!(i.dst_regs().is_empty());
        assert_eq!(i.src_regs(), vec![Reg::int(29), Reg::int(4)]);
    }

    #[test]
    fn mult_writes_hi_lo() {
        let i = Instruction {
            op: Op::Mult,
            rd: None,
            rs: Some(Reg::int(1)),
            rt: Some(Reg::int(2)),
            imm: 0,
            target: None,
        };
        assert_eq!(i.dst_regs(), vec![Reg::HI, Reg::LO]);
    }

    #[test]
    fn mfhi_reads_hi() {
        let i = Instruction {
            op: Op::Mfhi,
            rd: Some(Reg::int(5)),
            rs: None,
            rt: None,
            imm: 0,
            target: None,
        };
        assert_eq!(i.src_regs(), vec![Reg::HI]);
        assert_eq!(i.dst_regs(), vec![Reg::int(5)]);
    }

    #[test]
    fn fp_compare_writes_fsr_and_fp_branch_reads_it() {
        let cmp = Instruction::rrr(Op::CLtD, Reg::fp(0), Reg::fp(1), Reg::fp(2));
        assert_eq!(cmp.dst_regs(), vec![Reg::FSR]);
        let br = Instruction::branch(Op::Bc1t, None, None, 7);
        assert_eq!(br.src_regs(), vec![Reg::FSR]);
        assert_eq!(br.target, Some(7));
    }

    #[test]
    fn call_writes_return_address() {
        let i = Instruction {
            op: Op::Jal,
            rd: None,
            rs: None,
            rt: None,
            imm: 0,
            target: Some(0),
        };
        assert_eq!(i.dst_regs(), vec![Reg::RA]);
    }

    #[test]
    fn display_round_trip_is_readable() {
        let i = Instruction::mem(Op::Lw, Reg::int(4), Reg::int(29), 16);
        assert_eq!(i.to_string(), "lw r4 r29 #16");
    }
}
