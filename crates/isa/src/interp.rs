//! Functional interpreter: architectural execution of a [`Program`].
//!
//! The interpreter executes the program to completion, producing the
//! correct-path dynamic instruction [`Trace`] that the timing core replays.
//! This mirrors the paper's execution-driven methodology: addresses and
//! values are real, not synthetic.

use crate::asm::{Program, TEXT_BASE};
use crate::error::IsaError;
use crate::mem::MemImage;
use crate::op::Op;
use crate::reg::{Reg, NUM_REGS};
use crate::trace::{Trace, TraceRecord};
use std::sync::Arc;

/// Architectural register file state.
///
/// Integer registers hold `i64` values stored as `u64`; FP registers hold
/// IEEE-754 bit patterns (`f64` for double ops, an `f32` pattern in the low
/// word for single ops).
#[derive(Debug, Clone)]
pub struct ArchState {
    regs: [u64; NUM_REGS],
    /// Data memory.
    pub mem: MemImage,
}

impl ArchState {
    /// Creates a state with all registers zero and the given initial memory.
    pub fn new(mem: MemImage) -> ArchState {
        ArchState {
            regs: [0; NUM_REGS],
            mem,
        }
    }

    /// Reads register `r` (the zero register always reads zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes register `r` (writes to the zero register are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

/// Functional interpreter for the mds ISA.
///
/// # Examples
///
/// ```
/// use mds_isa::{Asm, Interpreter, Reg};
///
/// let mut a = Asm::new();
/// let buf = a.alloc_data(8, 8);
/// a.li(Reg::int(1), 7);
/// a.li(Reg::int(2), buf as i64);
/// a.sw(Reg::int(1), Reg::int(2), 0);
/// a.lw(Reg::int(3), Reg::int(2), 0);
/// a.halt();
/// let prog = a.assemble()?;
///
/// let trace = Interpreter::new(prog).run(1_000)?;
/// assert!(trace.completed());
/// assert_eq!(trace.counts().loads, 1);
/// assert_eq!(trace.counts().stores, 1);
/// # Ok::<(), mds_isa::IsaError>(())
/// ```
#[derive(Debug)]
pub struct Interpreter {
    program: Arc<Program>,
    state: ArchState,
}

impl Interpreter {
    /// Creates an interpreter over `program` with its initial data image.
    pub fn new(program: Program) -> Interpreter {
        let mem = program.data().clone();
        Interpreter {
            program: Arc::new(program),
            state: ArchState::new(mem),
        }
    }

    /// Creates an interpreter sharing an already-wrapped program.
    pub fn from_arc(program: Arc<Program>) -> Interpreter {
        let mem = program.data().clone();
        Interpreter {
            program,
            state: ArchState::new(mem),
        }
    }

    /// The architectural state (for inspection after [`run`](Self::run)).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Executes the program until `halt`, producing the dynamic trace.
    ///
    /// # Errors
    ///
    /// * [`IsaError::StepLimit`] if `max_steps` instructions retire without
    ///   reaching `halt`.
    /// * [`IsaError::PcOutOfRange`] if control leaves the text segment.
    /// * [`IsaError::BadJumpTarget`] if an indirect jump target is not a
    ///   valid instruction address.
    pub fn run(mut self, max_steps: u64) -> Result<Trace, IsaError> {
        let mut records: Vec<TraceRecord> = Vec::new();
        let mut sidx: u64 = self.program.entry() as u64;
        let program = Arc::clone(&self.program);
        let n = program.len() as u64;

        loop {
            if records.len() as u64 >= max_steps {
                return Err(IsaError::StepLimit { limit: max_steps });
            }
            if sidx >= n {
                return Err(IsaError::PcOutOfRange { sidx });
            }
            let inst = *program.inst(sidx as u32);
            if inst.op == Op::Halt {
                records.push(TraceRecord {
                    sidx: sidx as u32,
                    effaddr: 0,
                    value: 0,
                    old_value: 0,
                    size: 0,
                    taken: false,
                });
                return Ok(Trace::new(program, records, true));
            }
            let (record, next) = self.step(sidx as u32, &inst)?;
            records.push(record);
            sidx = next;
        }
    }

    /// Executes one instruction, returning its trace record and the next
    /// static index.
    fn step(
        &mut self,
        sidx: u32,
        inst: &crate::inst::Instruction,
    ) -> Result<(TraceRecord, u64), IsaError> {
        let s = &mut self.state;
        let rs = inst.rs.map(|r| s.reg(r)).unwrap_or(0);
        let rt = inst.rt.map(|r| s.reg(r)).unwrap_or(0);
        let imm = inst.imm;
        let mut rec = TraceRecord {
            sidx,
            effaddr: 0,
            value: 0,
            old_value: 0,
            size: 0,
            taken: false,
        };
        let mut next = sidx as u64 + 1;

        macro_rules! set_rd {
            ($v:expr) => {
                if let Some(rd) = inst.rd {
                    s.set_reg(rd, $v);
                }
            };
        }

        let f32_of = |bits: u64| f32::from_bits(bits as u32);
        let f32_to = |v: f32| v.to_bits() as u64;
        let f64_of = f64::from_bits;
        let f64_to = f64::to_bits;

        match inst.op {
            // ---- integer ALU ----
            Op::Add => set_rd!(rs.wrapping_add(rt)),
            Op::Sub => set_rd!(rs.wrapping_sub(rt)),
            Op::And => set_rd!(rs & rt),
            Op::Or => set_rd!(rs | rt),
            Op::Xor => set_rd!(rs ^ rt),
            Op::Nor => set_rd!(!(rs | rt)),
            Op::Sllv => set_rd!(rs.wrapping_shl(rt as u32 & 63)),
            Op::Srlv => set_rd!(rs.wrapping_shr(rt as u32 & 63)),
            Op::Srav => set_rd!(((rs as i64).wrapping_shr(rt as u32 & 63)) as u64),
            Op::Slt => set_rd!(((rs as i64) < (rt as i64)) as u64),
            Op::Sltu => set_rd!((rs < rt) as u64),
            Op::Addi => set_rd!(rs.wrapping_add(imm as u64)),
            Op::Andi => set_rd!(rs & imm as u64),
            Op::Ori => set_rd!(rs | imm as u64),
            Op::Xori => set_rd!(rs ^ imm as u64),
            Op::Slti => set_rd!(((rs as i64) < imm) as u64),
            Op::Sltiu => set_rd!((rs < imm as u64) as u64),
            Op::Sll => set_rd!(rs.wrapping_shl(imm as u32 & 63)),
            Op::Srl => set_rd!(rs.wrapping_shr(imm as u32 & 63)),
            Op::Sra => set_rd!(((rs as i64).wrapping_shr(imm as u32 & 63)) as u64),
            Op::Lui => set_rd!((imm as u64) << 16),

            // ---- multiply / divide ----
            Op::Mult => {
                let prod = (rs as i64 as i128).wrapping_mul(rt as i64 as i128);
                s.set_reg(Reg::LO, prod as u64);
                s.set_reg(Reg::HI, (prod >> 64) as u64);
            }
            Op::Multu => {
                let prod = (rs as u128).wrapping_mul(rt as u128);
                s.set_reg(Reg::LO, prod as u64);
                s.set_reg(Reg::HI, (prod >> 64) as u64);
            }
            Op::Div => {
                // Division by zero is architecturally undefined on MIPS; we
                // deterministically produce zero.
                let (q, r) = if rt == 0 {
                    (0, 0)
                } else {
                    (
                        (rs as i64).wrapping_div(rt as i64),
                        (rs as i64).wrapping_rem(rt as i64),
                    )
                };
                s.set_reg(Reg::LO, q as u64);
                s.set_reg(Reg::HI, r as u64);
            }
            Op::Divu => {
                let (q, r) = (
                    rs.checked_div(rt).unwrap_or(0),
                    rs.checked_rem(rt).unwrap_or(0),
                );
                s.set_reg(Reg::LO, q);
                s.set_reg(Reg::HI, r);
            }
            Op::Mfhi => set_rd!(s.reg(Reg::HI)),
            Op::Mflo => set_rd!(s.reg(Reg::LO)),

            // ---- loads ----
            Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Lwc1 | Op::Ldc1 => {
                let addr = rs.wrapping_add(imm as u64);
                let size = inst.mem_width().expect("load has width").bytes() as u8;
                let raw = s.mem.read(addr, size);
                let v = match inst.op {
                    Op::Lb => raw as u8 as i8 as i64 as u64,
                    Op::Lh => raw as u16 as i16 as i64 as u64,
                    Op::Lw => raw as u32 as i32 as i64 as u64,
                    _ => raw, // Lbu, Lhu, Lwc1, Ldc1: zero-extended / raw bits
                };
                set_rd!(v);
                rec.effaddr = addr;
                rec.size = size;
                rec.value = raw;
            }

            // ---- stores ----
            Op::Sb | Op::Sh | Op::Sw | Op::Swc1 | Op::Sdc1 => {
                let addr = rs.wrapping_add(imm as u64);
                let size = inst.mem_width().expect("store has width").bytes() as u8;
                let old = s.mem.read(addr, size);
                let mask = if size == 8 {
                    u64::MAX
                } else {
                    (1u64 << (8 * size)) - 1
                };
                let v = rt & mask;
                s.mem.write(addr, size, v);
                rec.effaddr = addr;
                rec.size = size;
                rec.value = v;
                rec.old_value = old;
            }

            // ---- floating point ----
            Op::AddS => set_rd!(f32_to(f32_of(rs) + f32_of(rt))),
            Op::SubS => set_rd!(f32_to(f32_of(rs) - f32_of(rt))),
            Op::MulS => set_rd!(f32_to(f32_of(rs) * f32_of(rt))),
            Op::DivS => set_rd!(f32_to(if f32_of(rt) == 0.0 {
                0.0
            } else {
                f32_of(rs) / f32_of(rt)
            })),
            Op::AddD => set_rd!(f64_to(f64_of(rs) + f64_of(rt))),
            Op::SubD => set_rd!(f64_to(f64_of(rs) - f64_of(rt))),
            Op::MulD => set_rd!(f64_to(f64_of(rs) * f64_of(rt))),
            Op::DivD => set_rd!(f64_to(if f64_of(rt) == 0.0 {
                0.0
            } else {
                f64_of(rs) / f64_of(rt)
            })),
            Op::CLtD => s.set_reg(Reg::FSR, (f64_of(rs) < f64_of(rt)) as u64),
            Op::CEqD => s.set_reg(Reg::FSR, (f64_of(rs) == f64_of(rt)) as u64),
            Op::CvtDW => set_rd!(f64_to(rs as u32 as i32 as f64)),
            Op::CvtWD => set_rd!(f64_of(rs) as i64 as i32 as u32 as u64),
            Op::MovD => set_rd!(rs),
            Op::NegD => set_rd!(f64_to(-f64_of(rs))),
            Op::AbsD => set_rd!(f64_to(f64_of(rs).abs())),

            // ---- branches ----
            Op::Beq | Op::Bne | Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez | Op::Bc1t | Op::Bc1f => {
                let taken = match inst.op {
                    Op::Beq => rs == rt,
                    Op::Bne => rs != rt,
                    Op::Blez => (rs as i64) <= 0,
                    Op::Bgtz => (rs as i64) > 0,
                    Op::Bltz => (rs as i64) < 0,
                    Op::Bgez => (rs as i64) >= 0,
                    Op::Bc1t => s.reg(Reg::FSR) != 0,
                    Op::Bc1f => s.reg(Reg::FSR) == 0,
                    _ => unreachable!(),
                };
                rec.taken = taken;
                if taken {
                    next = inst.target.expect("branch has target") as u64;
                }
            }

            // ---- jumps ----
            Op::J => {
                rec.taken = true;
                next = inst.target.expect("jump has target") as u64;
            }
            Op::Jal => {
                rec.taken = true;
                s.set_reg(Reg::RA, self.program.pc_of(sidx + 1));
                next = inst.target.expect("jump has target") as u64;
            }
            Op::Jr | Op::Jalr => {
                rec.taken = true;
                let target_pc = rs;
                if target_pc < TEXT_BASE || !(target_pc - TEXT_BASE).is_multiple_of(4) {
                    return Err(IsaError::BadJumpTarget { value: target_pc });
                }
                if inst.op == Op::Jalr {
                    s.set_reg(Reg::RA, self.program.pc_of(sidx + 1));
                }
                next = (target_pc - TEXT_BASE) / 4;
            }

            Op::Nop => {}
            Op::Halt => unreachable!("halt handled by run loop"),
        }

        Ok((rec, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn r(n: u8) -> Reg {
        Reg::int(n)
    }

    fn run(a: Asm) -> Trace {
        Interpreter::new(a.assemble().unwrap())
            .run(1_000_000)
            .unwrap()
    }

    #[test]
    fn arithmetic_basics() {
        let mut a = Asm::new();
        let out = a.alloc_data(8, 8);
        a.li(r(1), 10);
        a.li(r(2), 3);
        a.sub(r(3), r(1), r(2));
        a.mult(r(3), r(2));
        a.mflo(r(4));
        a.li(r(5), out as i64);
        a.sw(r(4), r(5), 0);
        a.halt();
        let t = run(a);
        let store = t
            .records()
            .iter()
            .find(|rec| t.program().inst(rec.sidx).op.is_store())
            .unwrap();
        assert_eq!(store.value, 21);
        assert_eq!(store.effaddr, out);
    }

    #[test]
    fn store_records_old_value() {
        let mut a = Asm::new();
        let addr = a.alloc_data(4, 4);
        a.init_u32(addr, 0x55);
        a.li(r(1), addr as i64);
        a.li(r(2), 0x77);
        a.sw(r(2), r(1), 0);
        a.halt();
        let t = run(a);
        let store = t
            .records()
            .iter()
            .find(|rec| t.program().inst(rec.sidx).op.is_store())
            .unwrap();
        assert_eq!(store.old_value, 0x55);
        assert_eq!(store.value, 0x77);
    }

    #[test]
    fn sign_extension_of_narrow_loads() {
        // Load a byte whose top bit is set, sign- and zero-extended, then
        // store both results so the trace exposes the register values.
        let mut a = Asm::new();
        let addr = a.alloc_data(16, 8);
        a.init_u32(addr, 0x0000_80ff);
        a.li(r(1), addr as i64);
        a.lb(r(2), r(1), 0); // 0xff -> -1 (sign-extended)
        a.lbu(r(3), r(1), 0); // 0xff -> 255 (zero-extended)
        a.sw(r(2), r(1), 8);
        a.sw(r(3), r(1), 12);
        a.halt();
        let t = run(a);
        let stores: Vec<_> = t
            .records()
            .iter()
            .filter(|rec| t.program().inst(rec.sidx).op.is_store())
            .collect();
        assert_eq!(stores[0].value, 0xffff_ffff); // -1 masked to 32 bits
        assert_eq!(stores[1].value, 0xff);
        let load = t
            .records()
            .iter()
            .find(|rec| t.program().inst(rec.sidx).op.is_load())
            .unwrap();
        assert_eq!(load.value, 0xff); // raw (unextended) memory value
        assert_eq!(load.size, 1);
    }

    #[test]
    fn loop_iterates_correct_number_of_times() {
        let mut a = Asm::new();
        a.li(r(1), 5);
        let top = a.label();
        a.bind(top);
        a.addi(r(1), r(1), -1);
        a.bgtz(r(1), top);
        a.halt();
        let t = run(a);
        // li + 5*(addi+bgtz) + halt = 12
        assert_eq!(t.len(), 12);
        assert_eq!(t.counts().branches, 5);
        assert_eq!(t.counts().taken_branches, 4);
        assert!(t.completed());
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        let func = a.label();
        let done = a.label();
        a.jal(func); // 0
        a.j(done); // 1
        a.bind(func);
        a.addi(r(9), r(9), 1); // 2
        a.jr(Reg::RA); // 3
        a.bind(done);
        a.halt(); // 4
        let t = run(a);
        let order: Vec<u32> = t.records().iter().map(|rec| rec.sidx).collect();
        assert_eq!(order, vec![0, 2, 3, 1, 4]);
    }

    #[test]
    fn fp_double_arithmetic() {
        let mut a = Asm::new();
        let x = a.alloc_data(8, 8);
        let y = a.alloc_data(8, 8);
        a.init_f64(x, 1.5);
        a.init_f64(y, 2.25);
        a.li(r(1), x as i64);
        a.li(r(2), y as i64);
        a.ldc1(Reg::fp(0), r(1), 0);
        a.ldc1(Reg::fp(1), r(2), 0);
        a.add_d(Reg::fp(2), Reg::fp(0), Reg::fp(1));
        a.sdc1(Reg::fp(2), r(1), 0);
        a.halt();
        let t = run(a);
        let store = t
            .records()
            .iter()
            .find(|rec| t.program().inst(rec.sidx).op.is_store())
            .unwrap();
        assert_eq!(f64::from_bits(store.value), 3.75);
    }

    #[test]
    fn fp_compare_and_branch() {
        let mut a = Asm::new();
        let x = a.alloc_data(8, 8);
        a.init_f64(x, 1.0);
        a.li(r(1), x as i64);
        a.ldc1(Reg::fp(0), r(1), 0);
        a.ldc1(Reg::fp(1), r(1), 0);
        let eq = a.label();
        a.c_eq_d(Reg::fp(0), Reg::fp(1));
        a.bc1t(eq);
        a.li(r(9), 111); // skipped
        a.bind(eq);
        a.halt();
        let t = run(a);
        let sidxs: Vec<u32> = t.records().iter().map(|rec| rec.sidx).collect();
        assert!(
            !sidxs.contains(&5),
            "fall-through instruction must be skipped"
        );
    }

    #[test]
    fn step_limit_is_reported() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.j(top); // infinite loop
        let p = a.assemble().unwrap();
        let err = Interpreter::new(p).run(100).unwrap_err();
        assert_eq!(err, IsaError::StepLimit { limit: 100 });
    }

    #[test]
    fn bad_indirect_jump_is_reported() {
        let mut a = Asm::new();
        a.li(r(1), 3); // not a valid text address
        a.jr(r(1));
        let p = a.assemble().unwrap();
        let err = Interpreter::new(p).run(100).unwrap_err();
        assert!(matches!(err, IsaError::BadJumpTarget { .. }));
    }

    #[test]
    fn zero_register_stays_zero() {
        let mut a = Asm::new();
        a.li(Reg::ZERO, 99);
        a.add(r(1), Reg::ZERO, Reg::ZERO);
        a.halt();
        let p = a.assemble().unwrap();
        let interp = Interpreter::new(p);
        let t = interp.run(100).unwrap();
        assert!(t.completed());
    }

    #[test]
    fn division_by_zero_is_deterministic_zero() {
        let mut a = Asm::new();
        a.li(r(1), 7);
        a.div(r(1), Reg::ZERO);
        a.mflo(r(2));
        a.mfhi(r(3));
        a.halt();
        let t = run(a);
        assert!(t.completed());
    }
}
