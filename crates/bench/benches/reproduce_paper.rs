//! Criterion benchmarks that regenerate every table and figure of the
//! paper (Moshovos & Sohi, HPCA 2000).
//!
//! Each group builds the suite once, times the experiment, and prints
//! the regenerated rows/series next to the paper's values, so
//! `cargo bench` doubles as the reproduction run.
//!
//! The shared [`Runner`] memoizes results across experiments; each
//! timed iteration clears the cache first so the numbers reflect fresh
//! simulations, not cache lookups.

use criterion::{criterion_group, criterion_main, Criterion};
use mds_harness::{experiments, Runner, Suite};
use mds_workloads::SuiteParams;
use std::sync::OnceLock;

fn runner() -> &'static Runner {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    RUNNER.get_or_init(|| {
        eprintln!("[bench] generating the 18-benchmark suite...");
        Runner::new(Suite::full(&SuiteParams::test()).expect("suite generation"))
    })
}

fn once(name: &str, render: impl FnOnce() -> String) {
    static PRINTED: OnceLock<std::sync::Mutex<std::collections::HashSet<String>>> = OnceLock::new();
    let set = PRINTED.get_or_init(Default::default);
    let mut guard = set.lock().expect("print lock");
    if guard.insert(name.to_string()) {
        println!("\n{}", render());
    }
}

fn bench_table1(c: &mut Criterion) {
    let r = runner();
    once("table1", || experiments::table1::run(r).render());
    let mut g = c.benchmark_group("table1_characteristics");
    g.sample_size(10);
    g.bench_function("run", |b| b.iter(|| experiments::table1::run(r)));
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let r = runner();
    once("fig1", || experiments::fig1::run(r).render());
    let mut g = c.benchmark_group("fig1_potential");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::fig1::run(r)
        })
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let r = runner();
    once("table3", || experiments::table3::run(r).render());
    let mut g = c.benchmark_group("table3_false_deps");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::table3::run(r)
        })
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let r = runner();
    once("fig2", || experiments::fig2::run(r).render());
    let mut g = c.benchmark_group("fig2_naive");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::fig2::run(r)
        })
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let r = runner();
    once("fig3", || experiments::fig3::run(r).render());
    let mut g = c.benchmark_group("fig3_addr_sched");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::fig3::run(r)
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let r = runner();
    once("fig4", || experiments::fig4::run(r).render());
    let mut g = c.benchmark_group("fig4_oracle_vs_addr");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::fig4::run(r)
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let r = runner();
    once("fig5", || experiments::fig5::run(r).render());
    let mut g = c.benchmark_group("fig5_sel_store");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::fig5::run(r)
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let r = runner();
    once("fig6", || experiments::fig6::run(r).render());
    let mut g = c.benchmark_group("fig6_sync");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::fig6::run(r)
        })
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let r = runner();
    once("table4", || experiments::table4::run(r).render());
    let mut g = c.benchmark_group("table4_missspec");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::table4::run(r)
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let r = runner();
    once("fig7", || experiments::fig7::run(r).render());
    let mut g = c.benchmark_group("fig7_split_window");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::fig7::run(r)
        })
    });
    g.finish();
}

fn bench_summary(c: &mut Criterion) {
    let r = runner();
    once("summary", || experiments::summary::run(r).render());
    once("table2", || {
        experiments::table2::render(&mds_core::CoreConfig::paper_128())
    });
    let mut g = c.benchmark_group("section4_summary");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| {
            r.clear_cache();
            experiments::summary::run(r)
        })
    });
    g.finish();
}

criterion_group! {
    name = paper;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(8)).configure_from_args();
    targets = bench_table1, bench_fig1, bench_table3, bench_fig2, bench_fig3,
              bench_fig4, bench_fig5, bench_fig6, bench_table4, bench_fig7,
              bench_summary
}
criterion_main!(paper);
