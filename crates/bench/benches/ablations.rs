//! Ablation benchmarks beyond the paper: predictor sizing, MDPT flush
//! interval, store sets vs MDPT synchronization, and the window sweep
//! extending Figure 1.
//!
//! Sweeps share a memoizing [`Runner`]; timed iterations clear its
//! cache so they measure fresh simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use mds_harness::{experiments::ablation, Runner, Suite};
use mds_workloads::{Benchmark, SuiteParams};
use std::sync::OnceLock;

/// Ablations run on a representative 6-benchmark subset to keep the
/// sweeps tractable.
fn runner() -> &'static Runner {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    RUNNER.get_or_init(|| {
        let subset = [
            Benchmark::Compress,
            Benchmark::Gcc,
            Benchmark::Vortex,
            Benchmark::Swim,
            Benchmark::Su2cor,
            Benchmark::Apsi,
        ];
        Runner::new(Suite::generate(&subset, &SuiteParams::test()).expect("suite generation"))
    })
}

fn bench_predictor_size(c: &mut Criterion) {
    let r = runner();
    println!(
        "\n{}",
        ablation::predictor_size(r, &[256, 1024, 4096, 16384]).render()
    );
    let mut g = c.benchmark_group("ablation_predictor_size");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            r.clear_cache();
            ablation::predictor_size(r, &[256, 4096])
        })
    });
    g.finish();
}

fn bench_flush_interval(c: &mut Criterion) {
    let r = runner();
    println!(
        "\n{}",
        ablation::flush_interval(r, &[Some(10_000), Some(100_000), Some(1_000_000), None]).render()
    );
    let mut g = c.benchmark_group("ablation_flush_interval");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            r.clear_cache();
            ablation::flush_interval(r, &[Some(1_000_000), None])
        })
    });
    g.finish();
}

fn bench_store_sets(c: &mut Criterion) {
    let r = runner();
    println!("\n{}", ablation::store_sets(r).render());
    let mut g = c.benchmark_group("ablation_store_set");
    g.sample_size(10);
    g.bench_function("compare", |b| {
        b.iter(|| {
            r.clear_cache();
            ablation::store_sets(r)
        })
    });
    g.finish();
}

fn bench_window_sweep(c: &mut Criterion) {
    let r = runner();
    println!(
        "\n{}",
        ablation::window_sweep(r, &[32, 64, 128, 256]).render()
    );
    let mut g = c.benchmark_group("ablation_window_sweep");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            r.clear_cache();
            ablation::window_sweep(r, &[64, 128])
        })
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let r = runner();
    println!("\n{}", ablation::recovery(r).render());
    let mut g = c.benchmark_group("ablation_recovery");
    g.sample_size(10);
    g.bench_function("compare", |b| {
        b.iter(|| {
            r.clear_cache();
            ablation::recovery(r)
        })
    });
    g.finish();
}

fn bench_branch_predictors(c: &mut Criterion) {
    let r = runner();
    println!("\n{}", ablation::branch_predictors(r).render());
    let mut g = c.benchmark_group("ablation_branch_predictor");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            r.clear_cache();
            ablation::branch_predictors(r)
        })
    });
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(6)).configure_from_args();
    targets = bench_predictor_size, bench_flush_interval, bench_store_sets, bench_window_sweep, bench_recovery, bench_branch_predictors
}
criterion_main!(ablations);
