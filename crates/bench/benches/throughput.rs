//! Raw simulator throughput: simulated instructions per second for the
//! substrate itself (interpreter and timing core).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mds_core::{CoreConfig, Policy, Simulator};
use mds_workloads::{Benchmark, SuiteParams};
use std::sync::OnceLock;

fn trace() -> &'static mds_isa::Trace {
    static TRACE: OnceLock<mds_isa::Trace> = OnceLock::new();
    TRACE.get_or_init(|| Benchmark::Gcc.trace(&SuiteParams::test()).expect("trace"))
}

fn bench_interpreter(c: &mut Criterion) {
    let params = SuiteParams::test();
    let mut g = c.benchmark_group("throughput_interpreter");
    g.sample_size(10);
    g.throughput(Throughput::Elements(params.dyn_target));
    g.bench_function("gcc", |b| {
        b.iter(|| Benchmark::Gcc.trace(&params).expect("trace"))
    });
    g.finish();
}

fn bench_timing_core(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("throughput_timing_core");
    g.sample_size(10);
    g.throughput(Throughput::Elements(t.len() as u64));
    for policy in [
        Policy::NasNo,
        Policy::NasNaive,
        Policy::NasSync,
        Policy::AsNaive,
    ] {
        let sim = Simulator::new(CoreConfig::paper_128().with_policy(policy));
        g.bench_function(policy.paper_name().replace('/', "_"), |b| {
            b.iter(|| sim.run(t))
        });
    }
    g.finish();
}

criterion_group! {
    name = throughput;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(5)).configure_from_args();
    targets = bench_interpreter, bench_timing_core
}
criterion_main!(throughput);
