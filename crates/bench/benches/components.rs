//! Component micro-benchmarks: raw throughput of the substrate pieces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mds_core::OracleDeps;
use mds_frontend::{Combined, DirectionPredictor};
use mds_isa::Interpreter;
use mds_mem::{AccessKind, MemConfig, MemSystem, StoreBuffer};
use mds_workloads::kernels;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_cache");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("strided_reads", |b| {
        b.iter(|| {
            let mut m = MemSystem::new(MemConfig::paper());
            let mut now = 0;
            for i in 0..10_000u64 {
                now = m.access(AccessKind::Read, (i * 64) % (1 << 22), now);
            }
            now
        })
    });
    g.finish();
}

fn bench_store_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_store_buffer");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_forward_retire", |b| {
        b.iter(|| {
            let mut sb = StoreBuffer::new(128);
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                sb.push(i, (i % 64) * 8, 8, i);
                if let mds_mem::Forward::Hit { .. } = sb.forward(i + 1, ((i + 32) % 64) * 8, 8) {
                    hits += 1;
                }
                if i >= 100 {
                    sb.retire(i - 100);
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_branch_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_branch_predictor");
    g.sample_size(20);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("combined_64k", |b| {
        b.iter(|| {
            let mut p = Combined::paper();
            let mut correct = 0u64;
            for i in 0..100_000u64 {
                let pc = 0x40_0000 + (i % 97) * 4;
                let taken = (i * 2_654_435_761) >> 13 & 3 != 0;
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        })
    });
    g.finish();
}

fn bench_oracle_build(c: &mut Criterion) {
    let trace = Interpreter::new(kernels::histogram(20_000, 1024).expect("kernel"))
        .run(2_000_000)
        .expect("runs");
    let mut g = c.benchmark_group("component_oracle");
    g.sample_size(20);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("build", |b| b.iter(|| OracleDeps::build(&trace)));
    g.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).configure_from_args();
    targets = bench_cache, bench_store_buffer, bench_branch_predictor, bench_oracle_build
}
criterion_main!(components);
