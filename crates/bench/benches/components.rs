//! Component micro-benchmarks: raw throughput of the substrate pieces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mds_core::{CoreConfig, OracleDeps, Policy, Simulator, TraceArtifacts};
use mds_frontend::{Combined, DirectionPredictor};
use mds_isa::{Interpreter, Trace, NUM_REGS};
use mds_mem::{AccessKind, MemConfig, MemSystem, StoreBuffer};
use mds_workloads::kernels;
use std::collections::HashMap;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_cache");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("strided_reads", |b| {
        b.iter(|| {
            let mut m = MemSystem::new(MemConfig::paper());
            let mut now = 0;
            for i in 0..10_000u64 {
                now = m.access(AccessKind::Read, (i * 64) % (1 << 22), now);
            }
            now
        })
    });
    g.finish();
}

fn bench_store_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_store_buffer");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_forward_retire", |b| {
        b.iter(|| {
            let mut sb = StoreBuffer::new(128);
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                sb.push(i, (i % 64) * 8, 8, i);
                if let mds_mem::Forward::Hit { .. } = sb.forward(i + 1, ((i + 32) % 64) * 8, 8) {
                    hits += 1;
                }
                if i >= 100 {
                    sb.retire(i - 100);
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_branch_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_branch_predictor");
    g.sample_size(20);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("combined_64k", |b| {
        b.iter(|| {
            let mut p = Combined::paper();
            let mut correct = 0u64;
            for i in 0..100_000u64 {
                let pc = 0x40_0000 + (i % 97) * 4;
                let taken = (i * 2_654_435_761) >> 13 & 3 != 0;
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        })
    });
    g.finish();
}

fn bench_oracle_build(c: &mut Criterion) {
    let trace = Interpreter::new(kernels::histogram(20_000, 1024).expect("kernel"))
        .run(2_000_000)
        .expect("runs");
    let mut g = c.benchmark_group("component_oracle");
    g.sample_size(20);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("build", |b| b.iter(|| OracleDeps::build(&trace)));
    g.finish();
}

/// The oracle builder the core used before the CSR/paged-table rewrite:
/// one `HashMap` entry per written byte, one heap `Vec` per record.
/// Kept here (not in the core) as the baseline the new layout is
/// measured against.
fn legacy_oracle_build(trace: &Trace) -> Vec<Vec<u32>> {
    let mut last_writer: HashMap<u64, u32> = HashMap::new();
    let mut producers: Vec<Vec<u32>> = Vec::with_capacity(trace.len());
    for (i, rec) in trace.records().iter().enumerate() {
        let inst = trace.inst(i);
        let mut row = Vec::new();
        if inst.op.is_load() {
            for off in 0..rec.size as u64 {
                if let Some(&w) = rec
                    .effaddr
                    .checked_add(off)
                    .and_then(|a| last_writer.get(&a))
                {
                    if !row.contains(&w) {
                        row.push(w);
                    }
                }
            }
            row.sort_unstable();
        }
        producers.push(row);
        if inst.op.is_store() {
            for off in 0..rec.size as u64 {
                if let Some(a) = rec.effaddr.checked_add(off) {
                    last_writer.insert(a, i as u32);
                }
            }
        }
    }
    producers
}

/// The register-dependence builder the core used before CSR: one boxed
/// slice allocation per record per edge kind.
#[allow(clippy::type_complexity)]
fn legacy_regdeps_build(trace: &Trace) -> (Vec<Box<[u32]>>, Vec<Box<[u32]>>, Vec<Box<[u32]>>) {
    let n = trace.len();
    let mut last_writer: [Option<u32>; NUM_REGS] = [None; NUM_REGS];
    let mut srcs: Vec<Box<[u32]>> = Vec::with_capacity(n);
    let mut addr: Vec<Box<[u32]>> = Vec::with_capacity(n);
    let mut data: Vec<Box<[u32]>> = Vec::with_capacity(n);
    for i in 0..n {
        let inst = trace.inst(i);
        if inst.op.is_mem() {
            srcs.push(Box::from([]));
            addr.push(
                inst.base_reg()
                    .and_then(|b| last_writer[b.index()])
                    .map_or_else(|| Box::from([]), |p| Box::from([p])),
            );
            data.push(
                inst.store_data_reg()
                    .and_then(|d| last_writer[d.index()])
                    .map_or_else(|| Box::from([]), |p| Box::from([p])),
            );
        } else {
            let mut row: Vec<u32> = Vec::new();
            for r in inst.src_regs() {
                if let Some(p) = last_writer[r.index()] {
                    if !row.contains(&p) {
                        row.push(p);
                    }
                }
            }
            srcs.push(row.into_boxed_slice());
            addr.push(Box::from([]));
            data.push(Box::from([]));
        }
        for r in inst.dst_regs() {
            last_writer[r.index()] = Some(i as u32);
        }
    }
    (srcs, addr, data)
}

/// Old vs. new dependence-structure construction on the same trace:
/// the per-byte-`HashMap` oracle and boxed-row register deps against
/// the paged-last-writer CSR oracle and the full [`TraceArtifacts`]
/// bundle (oracle + register deps + per-op metadata in one pass set).
fn bench_dependence_builds(c: &mut Criterion) {
    let trace = Interpreter::new(kernels::histogram(20_000, 1024).expect("kernel"))
        .run(2_000_000)
        .expect("runs");
    let mut g = c.benchmark_group("component_dependence_builds");
    g.sample_size(20);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("oracle_per_byte_map_legacy", |b| {
        b.iter(|| legacy_oracle_build(&trace))
    });
    g.bench_function("oracle_paged_csr", |b| b.iter(|| OracleDeps::build(&trace)));
    g.bench_function("regdeps_boxed_rows_legacy", |b| {
        b.iter(|| legacy_regdeps_build(&trace))
    });
    g.bench_function("artifact_bundle_csr", |b| {
        b.iter(|| TraceArtifacts::build(&trace))
    });
    g.finish();
}

/// Lane-batched vs. solo sweep execution on one shared trace: the same
/// four-config sweep run as four independent [`Simulator`] passes (the
/// pre-lane harness behavior) and as one [`Simulator::run_lanes`] batch.
/// The ratio is the per-config saving from fetching trace records,
/// CSR dependence rows, and op metadata once per instruction instead of
/// once per instruction per config.
fn bench_lane_batching(c: &mut Criterion) {
    let trace = Interpreter::new(kernels::histogram(20_000, 1024).expect("kernel"))
        .run(2_000_000)
        .expect("runs");
    let artifacts = TraceArtifacts::build(&trace);
    let configs: Vec<CoreConfig> = [
        Policy::NasNaive,
        Policy::NasSync,
        Policy::NasOracle,
        Policy::AsNo,
    ]
    .iter()
    .map(|&p| CoreConfig::paper_128().with_policy(p))
    .collect();
    let mut g = c.benchmark_group("component_lane_batching");
    g.sample_size(10);
    // Elements = instructions simulated across the whole sweep, so the
    // two variants report comparable per-element throughput.
    g.throughput(Throughput::Elements(
        trace.len() as u64 * configs.len() as u64,
    ));
    g.bench_function("solo_4_configs", |b| {
        b.iter(|| {
            configs
                .iter()
                .map(|cfg| {
                    Simulator::new(cfg.clone())
                        .run_with_artifacts(&trace, &artifacts)
                        .stats
                        .cycles
                })
                .sum::<u64>()
        })
    });
    g.bench_function("laned_4_configs", |b| {
        b.iter(|| {
            Simulator::run_lanes(&trace, &artifacts, &configs)
                .iter()
                .map(|r| r.stats.cycles)
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).configure_from_args();
    targets = bench_cache, bench_store_buffer, bench_branch_predictor, bench_oracle_build, bench_dependence_builds, bench_lane_batching
}
criterion_main!(components);
