//! The synthetic workload generator.
//!
//! Builds a program whose dynamic instruction stream matches a target
//! [`Character`]: the Table 1 load/store fractions exactly (by
//! construction) and the benchmark's memory-dependence character through
//! a weighted mix of micro-patterns:
//!
//! * **streaming** loads/stores — dependence-free array traffic;
//! * **recurrences** — loop-carried store→load chains over a small set
//!   of cells (the Figure 7 pattern), optionally with the store data
//!   hanging behind a multiply/divide chain;
//! * **read-modify-write** updates of pseudo-randomly indexed histogram
//!   bins — occasional short-distance true dependences;
//! * **call/return blocks** — register save/restore stack traffic;
//! * **pointer chasing** — serial address chains;
//! * **data-dependent branches** — hard-to-predict control flow.
//!
//! The generator is deterministic for a given seed.

use crate::character::Character;
use mds_isa::{Asm, IsaError, Label, Program, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dynamic instruction cost of one call/return block (jal + callee).
const CALL_DYN_INSTS: u64 = 15;
const CALL_LOADS: u64 = 3;
const CALL_STORES: u64 = 3;

/// Number of independent recurrence cells.
const N_CELLS: i64 = 4;

/// Histogram bins (power of two).
const HIST_BINS: u64 = 2048;

/// Pointer-chase ring nodes.
const CHASE_NODES: u64 = 512;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    StreamLoad,
    ChaseLoad,
    /// A store; in FP programs a `slow` instance is a *compute-store*:
    /// loads feed a deep multiply/divide chain whose result is stored.
    /// Independent per instance, so it pipelines fully when loads may
    /// issue early — and serializes iterations when they may not (the
    /// paper's FP crater under `NAS/NO`).
    StreamStore {
        slow: bool,
    },
    Recurrence {
        cell: i64,
        slow: bool,
    },
    Rmw,
    StackCall,
    /// The store half of a store→reload pair (data behind a multiply
    /// chain); `off` is the pair's private slot in the B array.
    ReloadStore {
        off: i64,
        slow: bool,
    },
    /// The load half; always emitted after its store.
    ReloadLoad {
        off: i64,
    },
    Branch,
    Filler,
}

impl Pattern {
    /// `(dynamic instructions, loads, stores)` contributed per execution.
    fn cost(self, fp: bool) -> (u64, u64, u64) {
        match self {
            // FP streaming loads come in consumed pairs (two ldc1 feeding
            // one add_d), as in real FP array kernels, so load latency is
            // always on a consuming path and load-heavy codes like
            // 145.fpppp (48.8% loads) remain constructible.
            Pattern::StreamLoad if fp => (3, 2, 0),
            Pattern::StreamLoad | Pattern::ChaseLoad => (1, 1, 0),
            Pattern::StreamStore { slow: true } if fp => (5, 2, 1),
            Pattern::StreamStore { .. } => (1, 0, 1),
            Pattern::Recurrence { slow, .. } => {
                let extra = if slow { 2 } else { 0 };
                let _ = fp; // int and fp recurrences have equal length
                (3 + extra, 1, 1)
            }
            Pattern::Rmw => (6, 1, 1),
            Pattern::ReloadStore { slow, .. } if fp => {
                (if slow { 4 } else { 1 }, if slow { 1 } else { 0 }, 1)
            }
            Pattern::ReloadStore { slow, .. } => (if slow { 3 } else { 1 }, 0, 1),
            Pattern::ReloadLoad { .. } => (1, 1, 0),
            Pattern::StackCall => (CALL_DYN_INSTS, CALL_LOADS, CALL_STORES),
            Pattern::Branch => (2, 0, 0),
            Pattern::Filler => (1, 0, 0),
        }
    }
}

/// Register conventions used by generated programs.
mod regs {
    use mds_isa::Reg;
    pub fn arr_a() -> Reg {
        Reg::int(1)
    }
    pub fn arr_b() -> Reg {
        Reg::int(2)
    }
    pub fn hist() -> Reg {
        Reg::int(3)
    }
    pub fn cells() -> Reg {
        Reg::int(4)
    }
    pub fn chase() -> Reg {
        Reg::int(5)
    }
    pub fn index() -> Reg {
        Reg::int(6)
    }
    pub fn counter() -> Reg {
        Reg::int(7)
    }
    pub fn ptr_a() -> Reg {
        Reg::int(8)
    }
    pub fn ptr_b() -> Reg {
        Reg::int(9)
    }
    pub fn konst() -> Reg {
        Reg::int(16)
    }
    pub fn fodder() -> Reg {
        Reg::int(17)
    }
    pub fn save0() -> Reg {
        Reg::int(18)
    }
    pub fn save1() -> Reg {
        Reg::int(19)
    }
}

/// Builds the program for `character` sized to roughly `dyn_target`
/// dynamic instructions.
///
/// # Errors
///
/// Propagates assembler errors (which indicate a generator bug).
pub(crate) fn build_program(
    character: &Character,
    dyn_target: u64,
    seed: u64,
) -> Result<Program, IsaError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = plan_body(character, &mut rng);

    let mut a = Asm::new();
    let layout = DataLayout::allocate(&mut a, character, &mut rng);

    // Loop overhead: per-iteration prologue (4) + counter + branch (2).
    let body_dyn: u64 = plan.iter().map(|p| p.cost(character.fp).0).sum::<u64>() + 6;
    let iterations = (dyn_target / body_dyn).max(1);

    emit_init(&mut a, &layout, iterations);
    let skip_callee = a.label();
    a.j(skip_callee);
    let callee = emit_callee(&mut a);
    a.bind(skip_callee);

    let top = a.label();
    a.bind(top);
    emit_iteration_prologue(&mut a, character);
    let mut scratch = ScratchPool::new();
    for &p in &plan {
        emit_pattern(&mut a, p, character, callee, &mut scratch, &mut rng);
    }
    a.addi(regs::counter(), regs::counter(), -1);
    a.bgtz(regs::counter(), top);
    a.halt();
    a.assemble()
}

/// Chooses the multiset of patterns for one loop body so the dynamic
/// load/store fractions match the character, then shuffles them.
fn plan_body(c: &Character, rng: &mut StdRng) -> Vec<Pattern> {
    const BODY: f64 = 300.0;
    let n_stores = (c.stores * BODY).round() as u64;
    let n_branches = ((c.branchiness / 100.0) * BODY).round() as u64;

    struct Acc {
        loads: u64,
        stores: u64,
        insts: u64,
    }
    let mut acc = Acc {
        loads: 0,
        stores: 0,
        insts: 0,
    };
    let mut patterns: Vec<Pattern> = Vec::new();
    fn push(p: Pattern, fp: bool, patterns: &mut Vec<Pattern>, acc: &mut Acc) {
        let (i, l, s) = p.cost(fp);
        patterns.push(p);
        acc.loads += l;
        acc.stores += s;
        acc.insts += i;
    }

    // 1. Spend the store budget across store-bearing patterns by weight.
    let wsum =
        c.recurrence_weight + c.rmw_weight + c.stack_weight + c.stream_weight + c.reload_weight;
    let mut spent_stores = 0u64;
    let mut next_reload_off = 0i64;
    while spent_stores < n_stores {
        let x: f64 = rng.gen::<f64>() * wsum;
        if x >= wsum - c.reload_weight {
            let off = 1024 + next_reload_off * 8; // private slot per pair
            next_reload_off += 1;
            let slow = rng.gen::<f64>() < c.slow_store_frac.max(0.35);
            push(
                Pattern::ReloadStore { off, slow },
                c.fp,
                &mut patterns,
                &mut acc,
            );
            push(Pattern::ReloadLoad { off }, c.fp, &mut patterns, &mut acc);
            spent_stores += 1;
        } else if x < c.recurrence_weight {
            let cell = rng.gen_range(0..N_CELLS);
            let slow = rng.gen::<f64>() < c.slow_store_frac;
            push(
                Pattern::Recurrence { cell, slow },
                c.fp,
                &mut patterns,
                &mut acc,
            );
            spent_stores += 1;
        } else if x < c.recurrence_weight + c.rmw_weight {
            push(Pattern::Rmw, c.fp, &mut patterns, &mut acc);
            spent_stores += 1;
        } else if x < c.recurrence_weight + c.rmw_weight + c.stack_weight {
            if spent_stores + CALL_STORES <= n_stores + 1 {
                push(Pattern::StackCall, c.fp, &mut patterns, &mut acc);
                spent_stores += CALL_STORES;
            } else {
                let slow = rng.gen::<f64>() < c.slow_store_frac;
                push(Pattern::StreamStore { slow }, c.fp, &mut patterns, &mut acc);
                spent_stores += 1;
            }
        } else {
            let slow = rng.gen::<f64>() < c.slow_store_frac;
            push(Pattern::StreamStore { slow }, c.fp, &mut patterns, &mut acc);
            spent_stores += 1;
        }
    }

    // 2. Branches (fixed per-body count).
    for _ in 0..n_branches {
        push(Pattern::Branch, c.fp, &mut patterns, &mut acc);
    }

    // 3. Remaining loads. The body size follows from the store budget
    // (store patterns have fixed instruction costs), and loads fill in
    // until their fraction of that size is met.
    let total_target = (acc.stores as f64 / c.stores).round() as u64;
    let n_loads = (c.loads * total_target as f64).round() as u64;
    let chase_sum = c.stream_weight + c.chase_weight;
    while acc.loads < n_loads {
        let x: f64 = rng.gen::<f64>() * chase_sum.max(1e-9);
        if x < c.chase_weight && !c.fp {
            push(Pattern::ChaseLoad, c.fp, &mut patterns, &mut acc);
        } else {
            push(Pattern::StreamLoad, c.fp, &mut patterns, &mut acc);
        }
    }

    // 4. Filler so that loads/insts lands on the target fraction. If the
    // pattern costs overshoot the target total, the fractions come out
    // proportionally low; the characters are chosen to stay feasible.
    let want_total = total_target.max((acc.loads as f64 / c.loads).round() as u64);
    while acc.insts + 6 < want_total {
        push(Pattern::Filler, c.fp, &mut patterns, &mut acc);
    }

    // Shuffle for interleaving (Fisher–Yates with the seeded rng).
    for i in (1..patterns.len()).rev() {
        let j = rng.gen_range(0..=i);
        patterns.swap(i, j);
    }
    // Place each reload's load a short, window-resident distance after
    // its store: these pairs are the spill/refill-style dependences that
    // trip naive speculation (the store's data is still in flight when
    // the load's address is ready).
    let loads: Vec<i64> = patterns
        .iter()
        .filter_map(|p| match p {
            Pattern::ReloadLoad { off } => Some(*off),
            _ => None,
        })
        .collect();
    patterns.retain(|p| !matches!(p, Pattern::ReloadLoad { .. }));
    for off in loads {
        let store_idx = patterns
            .iter()
            .position(|p| matches!(p, Pattern::ReloadStore { off: o, .. } if *o == off))
            .expect("reload store exists");
        let gap = rng.gen_range(2..12);
        let at = (store_idx + gap).min(patterns.len());
        patterns.insert(at, Pattern::ReloadLoad { off });
    }
    patterns
}

struct DataLayout {
    arr_a: u64,
    arr_b: u64,
    hist: u64,
    cells: u64,
    chase: u64,
    stack_top: u64,
}

impl DataLayout {
    fn allocate(a: &mut Asm, c: &Character, rng: &mut StdRng) -> DataLayout {
        let ws = c.working_set.next_power_of_two().max(4096);
        let arr_a = a.alloc_data(ws + 4096, 64);
        let arr_b = a.alloc_data(ws + 4096, 64);
        let hist = a.alloc_data(HIST_BINS * 4, 64);
        let cells = a.alloc_data(N_CELLS as u64 * 8, 64);
        let chase = a.alloc_data(CHASE_NODES * 16, 64);
        let stack = a.alloc_data(64 * 1024, 64);

        // Seed array A with pseudo-random values (branch fodder and
        // histogram indices).
        for off in (0..ws + 4096).step_by(4) {
            a.init_u32(arr_a + off, rng.gen());
        }
        for k in 0..N_CELLS as u64 {
            a.init_u64(cells + 8 * k, 1 + k);
        }
        // Pointer-chase ring: one cycle through a random permutation.
        let mut order: Vec<u64> = (0..CHASE_NODES).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for w in 0..CHASE_NODES as usize {
            let from = order[w];
            let to = order[(w + 1) % CHASE_NODES as usize];
            a.init_u32(chase + 16 * from, (chase + 16 * to) as u32);
        }

        DataLayout {
            arr_a,
            arr_b,
            hist,
            cells,
            chase,
            stack_top: stack + 64 * 1024 - 256,
        }
    }
}

fn emit_init(a: &mut Asm, layout: &DataLayout, iterations: u64) {
    a.li(regs::arr_a(), layout.arr_a as i64);
    a.li(regs::arr_b(), layout.arr_b as i64);
    a.li(regs::hist(), layout.hist as i64);
    a.li(regs::cells(), layout.cells as i64);
    a.li(regs::chase(), layout.chase as i64);
    a.li(Reg::SP, layout.stack_top as i64);
    a.li(regs::index(), 0);
    a.li(regs::counter(), iterations as i64);
    a.li(regs::konst(), 3);
    a.li(regs::fodder(), 1);
    a.li(regs::save0(), 7);
    a.li(regs::save1(), 9);
    a.li(Reg::int(28), 11);
    // FP constants: f8 = 1.0 (recurrence step), f9 = running value.
    let fp_const = a.alloc_data(16, 8);
    a.init_f64(fp_const, 1.0);
    a.init_f64(fp_const + 8, 1.000_000_1);
    a.li(Reg::int(20), fp_const as i64);
    a.ldc1(Reg::fp(8), Reg::int(20), 0);
    a.ldc1(Reg::fp(10), Reg::int(20), 8);
    for k in 11..=15 {
        a.mov_d(Reg::fp(k), Reg::fp(8));
    }
}

/// The shared callee: save two registers and the branch fodder to the
/// stack, run a short body, reload them, return. 16 dynamic
/// instructions plus the call itself.
fn emit_callee(a: &mut Asm) -> Label {
    let entry = a.label();
    a.bind(entry);
    a.addi(Reg::SP, Reg::SP, -32);
    a.sw(regs::save0(), Reg::SP, 0);
    a.sw(regs::save1(), Reg::SP, 4);
    a.sw(Reg::int(28), Reg::SP, 8);
    // Function body: real callees compute between the prologue spill and
    // the epilogue reload, giving the spills time to drain (an immediate
    // reload would mis-speculate on every call under naive speculation).
    for k in 0..4 {
        a.addi(Reg::int(27), Reg::int(27), 1 + k);
    }
    a.lw(regs::save0(), Reg::SP, 0);
    a.lw(regs::save1(), Reg::SP, 4);
    a.lw(Reg::int(28), Reg::SP, 8);
    a.addi(Reg::SP, Reg::SP, 32);
    a.jr(Reg::RA);
    entry
}

fn emit_iteration_prologue(a: &mut Asm, c: &Character) {
    // Advance the streaming index by one cache line and wrap.
    a.addi(regs::index(), regs::index(), 64);
    a.andi(
        regs::index(),
        regs::index(),
        c.working_set.next_power_of_two().max(4096) as i64 - 1,
    );
    a.add(regs::ptr_a(), regs::arr_a(), regs::index());
    a.add(regs::ptr_b(), regs::arr_b(), regs::index());
}

/// Cycles through scratch registers so consecutive patterns are
/// register-independent.
struct ScratchPool {
    next_int: usize,
    next_fp: usize,
    next_acc: usize,
}

impl ScratchPool {
    fn new() -> ScratchPool {
        ScratchPool {
            next_int: 0,
            next_fp: 0,
            next_acc: 0,
        }
    }

    /// Rotating FP accumulators (f11..f15): five independent chains so
    /// filler arithmetic does not collapse into one serial dependence.
    fn fp_acc(&mut self) -> Reg {
        let r = Reg::fp(11 + (self.next_acc % 5) as u8);
        self.next_acc += 1;
        r
    }

    fn int(&mut self) -> Reg {
        const POOL: [u8; 6] = [21, 22, 23, 24, 25, 26];
        let r = Reg::int(POOL[self.next_int % POOL.len()]);
        self.next_int += 1;
        r
    }

    fn fp(&mut self) -> Reg {
        let r = Reg::fp((self.next_fp % 6) as u8);
        self.next_fp += 1;
        r
    }
}

fn emit_pattern(
    a: &mut Asm,
    p: Pattern,
    c: &Character,
    callee: Label,
    scratch: &mut ScratchPool,
    rng: &mut StdRng,
) {
    // Random in-line offset within one cache line region above the
    // moving pointer (keeps accesses inside the array slack).
    let line_off = |rng: &mut StdRng, align: i64| -> i64 {
        let max = 4096 / align;
        rng.gen_range(0..max) * align
    };
    match p {
        Pattern::StreamLoad => {
            if c.fp {
                let f1 = scratch.fp();
                let f2 = scratch.fp();
                let t = scratch.fp();
                a.ldc1(f1, regs::ptr_a(), line_off(rng, 8));
                a.ldc1(f2, regs::ptr_a(), line_off(rng, 8));
                a.add_d(t, f1, f2); // consume both loads
            } else {
                // Refresh the branch fodder so branches stay data-driven.
                a.lw(regs::fodder(), regs::ptr_a(), line_off(rng, 4));
            }
        }
        Pattern::ChaseLoad => {
            a.lw(regs::chase(), regs::chase(), 0);
        }
        Pattern::StreamStore { slow } => {
            if c.fp {
                if slow {
                    // Compute-store: two loads feed a deep, per-instance
                    // FP chain whose result is stored (mul 5 + div 15).
                    let f1 = scratch.fp();
                    let f2 = scratch.fp();
                    a.ldc1(f1, regs::ptr_a(), line_off(rng, 8));
                    a.ldc1(f2, regs::ptr_a(), line_off(rng, 8));
                    a.mul_d(f1, f1, f2);
                    a.div_d(f1, f1, Reg::fp(10));
                    a.sdc1(f1, regs::ptr_b(), line_off(rng, 8));
                } else {
                    let acc = scratch.fp_acc();
                    a.sdc1(acc, regs::ptr_b(), line_off(rng, 8));
                }
            } else {
                a.sw(regs::fodder(), regs::ptr_b(), line_off(rng, 4));
            }
        }
        Pattern::Recurrence { cell, slow } => {
            let off = cell * 8;
            if c.fp {
                let f = scratch.fp();
                a.ldc1(f, regs::cells(), off);
                if slow {
                    a.div_d(f, f, Reg::fp(10)); // 15-cycle chain
                    a.add_d(f, f, Reg::fp(8));
                } else {
                    a.add_d(f, f, Reg::fp(8));
                }
                a.sdc1(f, regs::cells(), off);
            } else {
                let t = scratch.int();
                a.lw(t, regs::cells(), off);
                if slow {
                    a.mult(t, regs::konst()); // 4-cycle chain
                    a.mflo(t);
                    a.addi(t, t, 1);
                } else {
                    a.addi(t, t, 1);
                }
                a.sw(t, regs::cells(), off);
            }
        }
        Pattern::Rmw => {
            // Index the histogram with the most recent streamed value so
            // the bin address is ready shortly after dispatch (real hash
            // codes hoist the index computation). A per-instance constant
            // decorrelates neighbouring updates: without it, adjacent
            // patterns sharing one fodder value would always collide.
            let (t, u) = (scratch.int(), scratch.int());
            let salt = (rng.gen_range(0..HIST_BINS as i64)) << 2;
            a.andi(t, regs::fodder(), ((HIST_BINS - 1) << 2) as i64);
            a.xori(t, t, salt);
            a.add(t, regs::hist(), t);
            a.lw(u, t, 0);
            a.addi(u, u, 1);
            a.sw(u, t, 0);
        }
        Pattern::StackCall => {
            a.jal(callee);
        }
        Pattern::ReloadStore { off, slow } => {
            if c.fp {
                if slow {
                    // FP spill off the end of a deep chain fed by a load.
                    let f = scratch.fp();
                    a.ldc1(f, regs::ptr_a(), line_off(rng, 8));
                    a.mul_d(f, f, Reg::fp(8));
                    a.div_d(f, f, Reg::fp(10));
                    a.sdc1(f, regs::ptr_b(), off);
                } else {
                    let acc = scratch.fp_acc();
                    a.sdc1(acc, regs::ptr_b(), off);
                }
            } else if slow {
                let t = scratch.int();
                a.mult(regs::fodder(), regs::konst());
                a.mflo(t);
                a.sw(t, regs::ptr_b(), off);
            } else {
                a.sw(regs::fodder(), regs::ptr_b(), off);
            }
        }
        Pattern::ReloadLoad { off } => {
            if c.fp {
                let f = scratch.fp();
                a.ldc1(f, regs::ptr_b(), off);
            } else {
                let t = scratch.int();
                a.lw(t, regs::ptr_b(), off);
            }
        }
        Pattern::Branch => {
            let t = scratch.int();
            let skip = a.label();
            a.andi(t, regs::fodder(), 1 << (rng.gen_range(0..4)));
            a.bgtz(t, skip);
            a.bind(skip); // taken and fall-through meet immediately
        }
        Pattern::Filler => {
            if c.fp && rng.gen::<f64>() < 0.5 {
                let acc = scratch.fp_acc();
                a.add_d(acc, acc, Reg::fp(8));
            } else {
                let t = scratch.int();
                a.addi(t, t, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_isa::Interpreter;

    fn test_character(fp: bool) -> Character {
        Character {
            loads: 0.25,
            stores: 0.12,
            fp,
            recurrence_weight: 1.0,
            rmw_weight: 1.0,
            stack_weight: 1.0,
            stream_weight: 2.0,
            chase_weight: 0.5,
            reload_weight: 1.0,
            slow_store_frac: 0.3,
            branchiness: 2.0,
            working_set: 64 * 1024,
        }
    }

    #[test]
    fn generated_program_runs_to_halt() {
        let p = build_program(&test_character(false), 20_000, 42).unwrap();
        let t = Interpreter::new(p).run(200_000).unwrap();
        assert!(t.completed());
        assert!(t.len() > 10_000, "got {} dynamic instructions", t.len());
    }

    #[test]
    fn fractions_match_character() {
        for fp in [false, true] {
            let c = test_character(fp);
            let p = build_program(&c, 40_000, 7).unwrap();
            let t = Interpreter::new(p).run(400_000).unwrap();
            let lf = t.counts().load_fraction();
            let sf = t.counts().store_fraction();
            assert!(
                (lf - c.loads).abs() < 0.03,
                "fp={fp}: load fraction {lf} vs {}",
                c.loads
            );
            assert!(
                (sf - c.stores).abs() < 0.03,
                "fp={fp}: store fraction {sf} vs {}",
                c.stores
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let c = test_character(false);
        let t1 = Interpreter::new(build_program(&c, 10_000, 5).unwrap())
            .run(100_000)
            .unwrap();
        let t2 = Interpreter::new(build_program(&c, 10_000, 5).unwrap())
            .run(100_000)
            .unwrap();
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t1.records()[100], t2.records()[100]);
    }

    #[test]
    fn different_seeds_differ() {
        let c = test_character(false);
        let p1 = build_program(&c, 10_000, 5).unwrap();
        let p2 = build_program(&c, 10_000, 6).unwrap();
        assert_ne!(p1.len(), 0);
        // Same shape but different pattern interleavings.
        let same = p1
            .insts()
            .iter()
            .zip(p2.insts().iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            same < p1.len().min(p2.len()),
            "seeds produced identical programs"
        );
    }

    #[test]
    fn fp_character_emits_fp_ops() {
        let c = test_character(true);
        let p = build_program(&c, 10_000, 3).unwrap();
        let t = Interpreter::new(p).run(100_000).unwrap();
        assert!(
            t.counts().fp_ops > 100,
            "fp benchmark must execute fp arithmetic"
        );
    }

    #[test]
    fn dyn_target_is_roughly_respected() {
        let c = test_character(false);
        for target in [5_000u64, 50_000] {
            let t = Interpreter::new(build_program(&c, target, 1).unwrap())
                .run(10 * target)
                .unwrap();
            let ratio = t.len() as f64 / target as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "target {target}: got {}",
                t.len()
            );
        }
    }

    #[test]
    fn branches_are_present_and_data_dependent() {
        let c = test_character(false);
        let t = Interpreter::new(build_program(&c, 30_000, 9).unwrap())
            .run(300_000)
            .unwrap();
        let taken = t.counts().taken_branches as f64;
        let total = t.counts().branches as f64;
        assert!(total > 100.0);
        // The loop-closing branch is almost always taken; the fodder
        // branches vary, so the overall ratio sits strictly inside (0,1).
        let ratio = taken / total;
        assert!(ratio > 0.05 && ratio < 0.999, "taken ratio {ratio}");
    }
}
