//! Named micro-kernels: small, self-contained programs with known
//! memory-dependence structure, used throughout the tests, examples and
//! documentation. Each returns an assembled [`Program`].

use mds_isa::{Asm, IsaError, Program, Reg};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

/// The paper's Figure 7 loop: `a[i] = a[i-1] + k` — a loop-carried
/// store→load recurrence one element apart. `slow` routes the stored
/// value through a multiply, delaying the store's data as in
/// pointer-heavy codes.
///
/// # Errors
///
/// Propagates assembler errors (a kernel bug).
pub fn figure7_recurrence(iters: u32, slow: bool) -> Result<Program, IsaError> {
    let mut a = Asm::new();
    let arr = a.alloc_data(8 * (iters as u64 + 2), 8);
    let (i, n, base, k, t, v, c) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    a.li(i, 1);
    a.li(n, iters as i64 + 1);
    a.li(base, arr as i64);
    a.li(k, 3);
    let top = a.label();
    a.bind(top);
    a.sll(t, i, 3);
    a.add(t, base, t);
    a.lw(v, t, -8);
    if slow {
        a.mult(v, k);
        a.mflo(v);
    } else {
        a.add(v, v, k);
    }
    a.sw(v, t, 0);
    a.addi(i, i, 1);
    a.slt(c, i, n);
    a.bgtz(c, top);
    a.halt();
    a.assemble()
}

/// The Figure 7 recurrence unrolled so each 8-instruction step carries
/// its addresses as constants, with the load early and the (slow-data)
/// store late — the shape that defeats address-based scheduling under a
/// split window when `task_size` equals the step length (Section 3.7).
///
/// # Errors
///
/// Propagates assembler errors (a kernel bug).
pub fn unrolled_recurrence(steps: u32) -> Result<Program, IsaError> {
    let mut a = Asm::new();
    let arr = a.alloc_data(4 * (steps as u64 + 2), 8);
    let (base, three, v) = (r(1), r(2), r(4));
    a.li(base, arr as i64);
    a.li(three, 3);
    a.li(r(3), 17);
    a.sw(r(3), base, 0);
    a.nop();
    a.nop();
    a.nop();
    a.nop(); // align the first step to an 8-instruction task boundary
    for j in 0..steps as i64 {
        a.lw(v, base, 4 * j);
        a.mult(v, three);
        a.mflo(v);
        a.addi(v, v, 1);
        a.addi(r(10), r(10), 1);
        a.addi(r(11), r(11), 1);
        a.addi(r(12), r(12), 1);
        a.sw(v, base, 4 * (j + 1));
    }
    a.halt();
    a.assemble()
}

/// A pointer chase over a shuffled ring of `nodes` nodes, taking `steps`
/// hops — serial address chains with no memory dependences.
///
/// # Errors
///
/// Propagates assembler errors (a kernel bug).
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn pointer_chase(nodes: u32, steps: u32) -> Result<Program, IsaError> {
    assert!(nodes > 0, "need at least one node");
    let mut a = Asm::new();
    let heap = a.alloc_data(16 * nodes as u64, 64);
    // Deterministic shuffle: node i -> (i * 7 + 3) % nodes (7 coprime to
    // any power-of-two-ish count keeps one cycle for most sizes; fall
    // back to i+1 ring if not coprime).
    let next = |i: u64| -> u64 {
        if nodes.is_multiple_of(7) {
            (i + 1) % nodes as u64
        } else {
            (i * 7 + 3) % nodes as u64
        }
    };
    for i in 0..nodes as u64 {
        a.init_u32(heap + 16 * i, (heap + 16 * next(i)) as u32);
    }
    let (p, cnt) = (r(1), r(9));
    a.li(p, heap as i64);
    a.li(cnt, steps as i64);
    let top = a.label();
    a.bind(top);
    a.lw(p, p, 0);
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    a.assemble()
}

/// Histogram updates: `updates` read-modify-writes to pseudo-random
/// bins out of `bins` (power of two) — occasional short-distance true
/// dependences when bins collide, the `129.compress` pattern.
///
/// # Errors
///
/// Propagates assembler errors (a kernel bug).
///
/// # Panics
///
/// Panics if `bins` is not a power of two.
pub fn histogram(updates: u32, bins: u32) -> Result<Program, IsaError> {
    assert!(bins.is_power_of_two(), "bins must be a power of two");
    let mut a = Asm::new();
    let hist = a.alloc_data(4 * bins as u64, 64);
    let (h, x, xprev, t, t2, u, three, cnt) = (r(1), r(2), r(5), r(3), r(6), r(4), r(7), r(9));
    a.li(h, hist as i64);
    a.li(x, 0x243F_6A88); // pi bits as the mixing seed
    a.li(xprev, 0x243F_6A88);
    a.li(three, 3);
    a.li(cnt, updates as i64);
    let top = a.label();
    a.bind(top);
    // The bin index uses the value computed LAST iteration (software
    // pipelining), so the load's address is ready at iteration start
    // while the previous update's store data is still in its multiply
    // chain — the collision-mis-speculation structure of hash codes.
    a.srl(t, xprev, 12);
    a.andi(t, t, ((bins - 1) << 2) as i64);
    a.add(t, h, t);
    a.lw(u, t, 0);
    a.mult(u, three); // slow update
    a.mflo(u);
    a.addi(u, u, 1);
    a.sw(u, t, 0);
    // Advance the LCG for the next iteration, off the critical path.
    a.mov(xprev, x);
    a.li(t2, 1_664_525);
    a.mult(x, t2);
    a.mflo(x);
    a.addi(x, x, 1_013_904_223);
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    a.assemble()
}

/// Dependence-free streaming: sums `elems` words of an array — the
/// all-loads, no-conflicts baseline.
///
/// # Errors
///
/// Propagates assembler errors (a kernel bug).
pub fn streaming_sum(elems: u32) -> Result<Program, IsaError> {
    let mut a = Asm::new();
    let arr = a.alloc_data(4 * elems as u64 + 64, 64);
    for i in 0..elems as u64 {
        a.init_u32(arr + 4 * i, (i * 2_654_435_761) as u32);
    }
    let (base, sum, t, cnt) = (r(1), r(2), r(3), r(9));
    a.li(base, arr as i64);
    a.li(cnt, elems as i64);
    let top = a.label();
    a.bind(top);
    a.lw(t, base, 0);
    a.add(sum, sum, t);
    a.addi(base, base, 4);
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    a.assemble()
}

/// Call-heavy code: `calls` invocations of a callee that spills and
/// reloads three registers around a short body — the stack traffic of
/// `126.gcc`-class programs.
///
/// # Errors
///
/// Propagates assembler errors (a kernel bug).
pub fn call_storm(calls: u32) -> Result<Program, IsaError> {
    let mut a = Asm::new();
    let stack = a.alloc_data(64 * 1024, 64);
    a.li(Reg::SP, (stack + 64 * 1024 - 256) as i64);
    a.li(r(20), 7);
    a.li(r(21), 9);
    a.li(r(9), calls as i64);
    let callee = a.label();
    let top = a.label();
    let start = a.label();
    a.j(start);
    a.bind(callee);
    a.addi(Reg::SP, Reg::SP, -16);
    a.sw(r(20), Reg::SP, 0);
    a.sw(r(21), Reg::SP, 4);
    a.addi(r(20), r(20), 1);
    a.addi(r(21), r(21), 2);
    a.lw(r(20), Reg::SP, 0);
    a.lw(r(21), Reg::SP, 4);
    a.addi(Reg::SP, Reg::SP, 16);
    a.jr(Reg::RA);
    a.bind(start);
    a.bind(top);
    a.jal(callee);
    a.addi(r(9), r(9), -1);
    a.bgtz(r(9), top);
    a.halt();
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_isa::Interpreter;

    fn run(p: Program) -> mds_isa::Trace {
        Interpreter::new(p).run(1_000_000).unwrap()
    }

    #[test]
    fn figure7_counts() {
        let t = run(figure7_recurrence(100, false).unwrap());
        assert!(t.completed());
        assert_eq!(t.counts().loads, 100);
        assert_eq!(t.counts().stores, 100);
    }

    #[test]
    fn figure7_slow_variant_is_longer() {
        let fast = run(figure7_recurrence(50, false).unwrap());
        let slow = run(figure7_recurrence(50, true).unwrap());
        assert!(slow.len() > fast.len());
    }

    #[test]
    fn unrolled_recurrence_steps_are_eight_instructions() {
        let t = run(unrolled_recurrence(32).unwrap());
        assert!(t.completed());
        assert_eq!(t.counts().loads, 32);
        assert_eq!(t.counts().stores, 33); // + the seed store
    }

    #[test]
    fn pointer_chase_visits_steps_nodes() {
        let t = run(pointer_chase(64, 500).unwrap());
        assert!(t.completed());
        assert_eq!(t.counts().loads, 500);
        // The ring permutation keeps every next-pointer inside the heap.
        for (i, rec) in t.records().iter().enumerate() {
            if t.program().inst(rec.sidx).op.is_load() {
                assert!(rec.value != 0, "node {i} has a null next pointer");
            }
        }
    }

    #[test]
    fn histogram_reads_and_writes_pair_up() {
        let t = run(histogram(300, 64).unwrap());
        assert!(t.completed());
        assert_eq!(t.counts().loads, 300);
        assert_eq!(t.counts().stores, 300);
    }

    #[test]
    fn streaming_sum_loads_every_element() {
        let t = run(streaming_sum(256).unwrap());
        assert_eq!(t.counts().loads, 256);
        assert_eq!(t.counts().stores, 0);
    }

    #[test]
    fn call_storm_balances_spills_and_reloads() {
        let t = run(call_storm(100).unwrap());
        assert!(t.completed());
        assert_eq!(t.counts().loads, 200);
        assert_eq!(t.counts().stores, 200);
    }
}
