//! The 18-benchmark synthetic SPEC'95 suite.

use crate::character::{Character, Table1Row};
use crate::generator::build_program;
use mds_isa::{Interpreter, IsaError, Program, Trace};
use std::fmt;

/// One synthetic benchmark, named after the SPEC'95 program whose
/// Table 1 characteristics it reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the SPEC'95 programs
pub enum Benchmark {
    // SPECint'95
    Go,
    M88ksim,
    Gcc,
    Compress,
    Li,
    Ijpeg,
    Perl,
    Vortex,
    // SPECfp'95
    Tomcatv,
    Swim,
    Su2cor,
    Hydro2d,
    Mgrid,
    Applu,
    Turb3d,
    Apsi,
    Fpppp,
    Wave5,
}

/// Sizing parameters for the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteParams {
    /// Approximate dynamic instructions to simulate per benchmark.
    pub dyn_target: u64,
    /// Seed for the workload generator (addresses, interleavings).
    pub seed: u64,
    /// Interpreter step limit (guards against generator bugs).
    pub max_steps: u64,
}

impl SuiteParams {
    /// Minimal sizing for doctests and smoke tests (~4k instructions).
    pub fn tiny() -> SuiteParams {
        SuiteParams {
            dyn_target: 4_000,
            seed: 0xB5,
            max_steps: 100_000,
        }
    }

    /// Test sizing (~20k instructions).
    pub fn test() -> SuiteParams {
        SuiteParams {
            dyn_target: 20_000,
            seed: 0xB5,
            max_steps: 500_000,
        }
    }

    /// Benchmark sizing (~60k instructions), the default for regenerating
    /// the paper's tables and figures.
    pub fn bench() -> SuiteParams {
        SuiteParams {
            dyn_target: 60_000,
            seed: 0xB5,
            max_steps: 2_000_000,
        }
    }
}

impl Default for SuiteParams {
    fn default() -> SuiteParams {
        SuiteParams::bench()
    }
}

impl Benchmark {
    /// Every benchmark, integer programs first (Table 1 order).
    pub const ALL: [Benchmark; 18] = [
        Benchmark::Go,
        Benchmark::M88ksim,
        Benchmark::Gcc,
        Benchmark::Compress,
        Benchmark::Li,
        Benchmark::Ijpeg,
        Benchmark::Perl,
        Benchmark::Vortex,
        Benchmark::Tomcatv,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Hydro2d,
        Benchmark::Mgrid,
        Benchmark::Applu,
        Benchmark::Turb3d,
        Benchmark::Apsi,
        Benchmark::Fpppp,
        Benchmark::Wave5,
    ];

    /// The SPECint'95 subset.
    pub const INT: [Benchmark; 8] = [
        Benchmark::Go,
        Benchmark::M88ksim,
        Benchmark::Gcc,
        Benchmark::Compress,
        Benchmark::Li,
        Benchmark::Ijpeg,
        Benchmark::Perl,
        Benchmark::Vortex,
    ];

    /// The SPECfp'95 subset.
    pub const FP: [Benchmark; 10] = [
        Benchmark::Tomcatv,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Hydro2d,
        Benchmark::Mgrid,
        Benchmark::Applu,
        Benchmark::Turb3d,
        Benchmark::Apsi,
        Benchmark::Fpppp,
        Benchmark::Wave5,
    ];

    /// The full SPEC'95 name, e.g. `126.gcc`.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Go => "099.go",
            Benchmark::M88ksim => "124.m88ksim",
            Benchmark::Gcc => "126.gcc",
            Benchmark::Compress => "129.compress",
            Benchmark::Li => "130.li",
            Benchmark::Ijpeg => "132.ijpeg",
            Benchmark::Perl => "134.perl",
            Benchmark::Vortex => "147.vortex",
            Benchmark::Tomcatv => "101.tomcatv",
            Benchmark::Swim => "102.swim",
            Benchmark::Su2cor => "103.su2cor",
            Benchmark::Hydro2d => "104.hydro2d",
            Benchmark::Mgrid => "107.mgrid",
            Benchmark::Applu => "110.applu",
            Benchmark::Turb3d => "125.turb3d",
            Benchmark::Apsi => "141.apsi",
            Benchmark::Fpppp => "145.fpppp",
            Benchmark::Wave5 => "146.wave5",
        }
    }

    /// The short numeric label the paper uses in its tables, e.g. `126`.
    pub fn number(self) -> &'static str {
        &self.name()[..3]
    }

    /// Whether this is a SPECfp'95 program.
    pub fn is_fp(self) -> bool {
        Benchmark::FP.contains(&self)
    }

    /// The paper's Table 1 row for this program.
    pub fn table1(self) -> Table1Row {
        // (IC millions, loads, stores, sampling ratio) from Table 1.
        let (ic, l, s, sr) = match self {
            Benchmark::Go => (133.8, 0.209, 0.073, "N/A"),
            Benchmark::M88ksim => (196.3, 0.188, 0.096, "1:1"),
            Benchmark::Gcc => (316.9, 0.243, 0.175, "1:2"),
            Benchmark::Compress => (153.8, 0.217, 0.135, "1:2"),
            Benchmark::Li => (206.5, 0.296, 0.176, "1:1"),
            Benchmark::Ijpeg => (129.6, 0.177, 0.087, "N/A"),
            Benchmark::Perl => (176.8, 0.256, 0.166, "1:1"),
            Benchmark::Vortex => (376.9, 0.263, 0.273, "1:2"),
            Benchmark::Tomcatv => (329.1, 0.319, 0.088, "1:2"),
            Benchmark::Swim => (188.8, 0.270, 0.066, "1:2"),
            Benchmark::Su2cor => (279.9, 0.338, 0.101, "1:3"),
            Benchmark::Hydro2d => (1128.9, 0.297, 0.082, "1:10"),
            Benchmark::Mgrid => (95.0, 0.466, 0.030, "N/A"),
            Benchmark::Applu => (168.9, 0.314, 0.079, "1:1"),
            Benchmark::Turb3d => (1666.6, 0.213, 0.146, "1:10"),
            Benchmark::Apsi => (125.9, 0.314, 0.134, "N/A"),
            Benchmark::Fpppp => (214.2, 0.488, 0.175, "1:2"),
            Benchmark::Wave5 => (290.8, 0.302, 0.130, "1:2"),
        };
        Table1Row {
            ic_millions: ic,
            loads: l,
            stores: s,
            sampling: sr,
        }
    }

    /// The memory-dependence character driving the workload generator.
    ///
    /// Load/store fractions come from Table 1; the remaining knobs model
    /// each program class: integer codes mix stack, pointer and
    /// read-modify-write traffic with branchy control flow; FP codes
    /// stream large arrays behind long arithmetic chains. The
    /// `slow_store_frac` values track the paper's Table 3 resolution
    /// latencies (e.g. `103.su2cor` at 91 cycles vs `102.swim` at 5.4).
    pub fn character(self) -> Character {
        let t = self.table1();
        // (recurrence, rmw, stack, stream, chase, reload, slow, branchiness, ws KiB)
        let (rec, rmw, stack, stream, chase, reload, slow, br, ws) = match self {
            // Integer: go is branchy board-scanning with little stack;
            Benchmark::Go => (0.6, 1.0, 0.5, 3.0, 0.8, 0.8, 0.25, 4.0, 256),
            // m88ksim: simulator loop, register-file updates;
            Benchmark::M88ksim => (0.4, 0.6, 1.0, 2.5, 0.3, 0.18, 0.25, 2.5, 128),
            // gcc: allocation-heavy, deep call chains, large code;
            Benchmark::Gcc => (0.25, 0.5, 2.5, 2.0, 1.0, 1.2, 0.45, 3.0, 512),
            // compress: hash-table updates dominate (highest NAV rate);
            Benchmark::Compress => (1.0, 2.5, 0.3, 1.5, 0.2, 3.2, 0.45, 2.0, 256),
            // li: interpreter, cons-cell chasing + stack;
            Benchmark::Li => (0.6, 0.5, 2.0, 1.5, 2.0, 0.55, 0.40, 2.5, 128),
            // ijpeg: regular DCT streaming, few conflicts;
            Benchmark::Ijpeg => (0.3, 0.4, 0.3, 4.0, 0.1, 0.22, 0.25, 1.0, 256),
            // perl: interpreter with stack and hashes;
            Benchmark::Perl => (0.5, 0.6, 2.0, 1.5, 1.2, 0.45, 0.30, 2.5, 256),
            // vortex: object store, store-heavy with deep calls;
            Benchmark::Vortex => (0.2, 0.8, 1.2, 1.5, 0.8, 0.18, 0.30, 2.0, 512),
            // FP: stencils stream; slow fractions follow Table 3 RL.
            Benchmark::Tomcatv => (0.8, 0.1, 0.1, 4.0, 0.0, 0.6, 0.55, 0.6, 1024),
            Benchmark::Swim => (0.5, 0.1, 0.1, 5.0, 0.0, 0.55, 0.10, 0.5, 1024),
            Benchmark::Su2cor => (1.0, 0.2, 0.1, 4.0, 0.0, 0.15, 0.80, 0.8, 512),
            Benchmark::Hydro2d => (1.5, 0.2, 0.1, 4.0, 0.0, 5.5, 0.20, 0.8, 512),
            Benchmark::Mgrid => (0.3, 0.1, 0.1, 6.0, 0.0, 0.8, 0.35, 0.3, 1024),
            Benchmark::Applu => (0.8, 0.2, 0.1, 4.0, 0.0, 0.15, 0.35, 0.7, 512),
            Benchmark::Turb3d => (0.25, 0.3, 0.4, 3.0, 0.0, 0.4, 0.40, 1.0, 512),
            Benchmark::Apsi => (0.6, 0.3, 0.2, 3.5, 0.0, 0.2, 0.70, 1.0, 256),
            Benchmark::Fpppp => (0.6, 0.2, 0.3, 5.0, 0.0, 0.5, 0.30, 0.3, 128),
            Benchmark::Wave5 => (0.8, 0.2, 0.2, 4.0, 0.0, 1.6, 0.15, 0.8, 512),
        };
        Character {
            loads: t.loads,
            stores: t.stores,
            fp: self.is_fp(),
            recurrence_weight: rec,
            rmw_weight: rmw,
            stack_weight: stack,
            stream_weight: stream,
            chase_weight: chase,
            reload_weight: reload,
            slow_store_frac: slow,
            branchiness: br,
            working_set: ws * 1024,
        }
    }

    /// Builds this benchmark's program.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (which indicate a generator bug).
    pub fn program(self, params: &SuiteParams) -> Result<Program, IsaError> {
        // Mix the benchmark identity into the seed so programs differ.
        let seed = params.seed ^ (self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        build_program(&self.character(), params.dyn_target, seed)
    }

    /// Builds and functionally executes this benchmark, returning its
    /// dynamic trace.
    ///
    /// # Errors
    ///
    /// Propagates assembler or interpreter errors.
    pub fn trace(self, params: &SuiteParams) -> Result<Trace, IsaError> {
        Interpreter::new(self.program(params)?).run(params.max_steps)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_int_plus_fp() {
        assert_eq!(Benchmark::ALL.len(), 18);
        assert_eq!(Benchmark::INT.len() + Benchmark::FP.len(), 18);
        for b in Benchmark::INT {
            assert!(!b.is_fp(), "{b}");
        }
        for b in Benchmark::FP {
            assert!(b.is_fp(), "{b}");
        }
    }

    #[test]
    fn names_and_numbers() {
        assert_eq!(Benchmark::Gcc.name(), "126.gcc");
        assert_eq!(Benchmark::Gcc.number(), "126");
        assert_eq!(Benchmark::Tomcatv.to_string(), "101.tomcatv");
    }

    #[test]
    fn every_benchmark_traces_to_completion() {
        let p = SuiteParams::tiny();
        for b in Benchmark::ALL {
            let t = b.trace(&p).unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(t.completed(), "{b} hit the step limit");
            assert!(
                t.len() as u64 > p.dyn_target / 2,
                "{b}: only {} insts",
                t.len()
            );
        }
    }

    #[test]
    fn load_store_fractions_track_table1() {
        let p = SuiteParams::test();
        for b in Benchmark::ALL {
            let t = b.trace(&p).unwrap();
            let row = b.table1();
            let lf = t.counts().load_fraction();
            let sf = t.counts().store_fraction();
            assert!(
                (lf - row.loads).abs() < 0.04,
                "{b}: load fraction {lf:.3} vs Table 1 {:.3}",
                row.loads
            );
            assert!(
                (sf - row.stores).abs() < 0.04,
                "{b}: store fraction {sf:.3} vs Table 1 {:.3}",
                row.stores
            );
        }
    }

    #[test]
    fn fp_benchmarks_execute_fp_work() {
        let p = SuiteParams::tiny();
        for b in [Benchmark::Swim, Benchmark::Fpppp] {
            let t = b.trace(&p).unwrap();
            assert!(t.counts().fp_ops > 50, "{b}: {} fp ops", t.counts().fp_ops);
        }
    }

    #[test]
    fn benchmarks_differ_from_each_other() {
        let p = SuiteParams::tiny();
        let a = Benchmark::Go.trace(&p).unwrap();
        let b = Benchmark::Mgrid.trace(&p).unwrap();
        assert!(
            (a.counts().load_fraction() - b.counts().load_fraction()).abs() > 0.1,
            "go and mgrid must have very different load mixes"
        );
    }

    #[test]
    fn traces_are_deterministic() {
        let p = SuiteParams::tiny();
        let a = Benchmark::Compress.trace(&p).unwrap();
        let b = Benchmark::Compress.trace(&p).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[10], b.records()[10]);
    }
}
