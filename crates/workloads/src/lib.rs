//! # mds-workloads — the synthetic SPEC'95-like benchmark suite
//!
//! The paper evaluates on SPEC'95 binaries compiled for MIPS-I; those
//! binaries (and the compiler toolchain) are unavailable here, so this
//! crate provides the documented substitution (see DESIGN.md): eighteen
//! synthetic benchmarks, one per SPEC'95 program, whose dynamic
//! load/store fractions match the paper's Table 1 and whose
//! memory-dependence character — loop-carried recurrences, stack
//! save/restore traffic, pointer chasing, read-modify-write updates,
//! slow store-data chains, branchiness — models each program class.
//!
//! Programs are generated deterministically (per-benchmark seed), so
//! every experiment is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use mds_workloads::{Benchmark, SuiteParams};
//!
//! let trace = Benchmark::Compress.trace(&SuiteParams::tiny())?;
//! let row = Benchmark::Compress.table1();
//! // The synthetic mix tracks Table 1's 21.7% loads / 13.5% stores.
//! assert!((trace.counts().load_fraction() - row.loads).abs() < 0.05);
//! # Ok::<(), mds_isa::IsaError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod character;
mod generator;
pub mod kernels;
mod suite;

pub use character::{Character, Table1Row};
pub use suite::{Benchmark, SuiteParams};
