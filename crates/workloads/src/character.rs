//! Per-benchmark execution characteristics.
//!
//! Table 1 of the paper gives, for each SPEC'95 program, the dynamic
//! instruction count, the fraction of loads and stores, and the sampling
//! ratio. The synthetic suite reproduces the load/store fractions
//! exactly (they drive every experiment) and models each program's
//! memory-dependence *character* — how often loads truly depend on
//! recent stores, how late store data arrives, how much stack and
//! pointer traffic there is — with the knobs below.

/// A row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Dynamic instruction count of the original program, in millions.
    pub ic_millions: f64,
    /// Fraction of dynamic instructions that are loads.
    pub loads: f64,
    /// Fraction of dynamic instructions that are stores.
    pub stores: f64,
    /// The paper's timing:functional sampling ratio ("N/A" = no sampling).
    pub sampling: &'static str,
}

/// The memory-dependence character of a benchmark, used by the workload
/// generator to shape its instruction mix.
///
/// All `*_weight` fields are relative pattern weights (they need not sum
/// to one); the generator picks patterns greedily to match the Table 1
/// load/store fractions and uses the weights to choose among eligible
/// patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Character {
    /// Target fraction of loads (Table 1).
    pub loads: f64,
    /// Target fraction of stores (Table 1).
    pub stores: f64,
    /// Whether the benchmark is floating-point (uses FP loads/stores and
    /// FP arithmetic chains).
    pub fp: bool,
    /// Weight of loop-carried store→load recurrences over a small set of
    /// cells (the Figure 7 pattern; drives true dependences and naive
    /// mis-speculation).
    pub recurrence_weight: f64,
    /// Weight of read-modify-write updates to pseudo-randomly indexed
    /// histogram bins (occasional short-distance true dependences).
    pub rmw_weight: f64,
    /// Weight of call/return blocks with register save/restore stack
    /// traffic (short-distance, quickly-resolved dependences).
    pub stack_weight: f64,
    /// Weight of streaming (dependence-free) loads.
    pub stream_weight: f64,
    /// Weight of pointer-chasing loads (serial address chains).
    pub chase_weight: f64,
    /// Weight of store→reload pairs: a store whose data arrives late,
    /// reloaded from the same address a short (window-resident) distance
    /// later — spill/refill and struct write-then-read traffic, the main
    /// source of naive mis-speculation in codes without tight
    /// recurrences.
    pub reload_weight: f64,
    /// Fraction of recurrence stores whose data hangs behind a
    /// long-latency arithmetic chain (multiply/divide; FP chains when
    /// `fp`). Late store data raises false-dependence resolution
    /// latency and the cost of not speculating.
    pub slow_store_frac: f64,
    /// Data-dependent (hard-to-predict) branches per 100 instructions.
    pub branchiness: f64,
    /// Working-set size in bytes for the streamed arrays.
    pub working_set: u64,
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, SuiteParams};

    #[test]
    fn table1_fractions_are_sane() {
        for b in Benchmark::ALL {
            let row = b.table1();
            assert!(
                row.loads > 0.1 && row.loads < 0.55,
                "{b}: loads {}",
                row.loads
            );
            assert!(
                row.stores > 0.02 && row.stores < 0.30,
                "{b}: stores {}",
                row.stores
            );
            assert!(row.ic_millions > 50.0);
        }
    }

    #[test]
    fn characters_follow_table1() {
        for b in Benchmark::ALL {
            let c = b.character();
            let row = b.table1();
            assert!((c.loads - row.loads).abs() < 1e-9, "{b}");
            assert!((c.stores - row.stores).abs() < 1e-9, "{b}");
            assert_eq!(c.fp, b.is_fp(), "{b}");
        }
    }

    #[test]
    fn params_presets_are_ordered() {
        assert!(SuiteParams::tiny().dyn_target < SuiteParams::test().dyn_target);
        assert!(SuiteParams::test().dyn_target <= SuiteParams::bench().dyn_target);
    }
}
