//! Store barrier predictor (Section 3.5; Hesson et al., Adams et al.).
//!
//! Predicts, per *store*, whether the store has true dependences that
//! would get mis-speculated. If so, **all** loads following the store are
//! made to wait until the store executes. Compared to per-load
//! predictors, it needs entries only for stores.

use crate::selective::ConfidenceParams;
use crate::table::PcTable;

/// Per-store confidence predictor for the store barrier policy.
///
/// # Examples
///
/// ```
/// use mds_predict::{ConfidenceParams, StoreBarrierPredictor};
///
/// let mut p = StoreBarrierPredictor::new(ConfidenceParams::paper());
/// for _ in 0..3 {
///     p.record_misspeculation(0x2000); // store pc involved in violations
/// }
/// assert!(p.predicts_barrier(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct StoreBarrierPredictor {
    params: ConfidenceParams,
    table: PcTable<u8>,
    last_reset: u64,
}

impl StoreBarrierPredictor {
    /// Creates a predictor with the given parameters (the paper uses the
    /// same 4K 2-way, threshold-3, 1M-cycle-reset configuration as the
    /// selective predictor).
    pub fn new(params: ConfidenceParams) -> StoreBarrierPredictor {
        StoreBarrierPredictor {
            table: PcTable::new(params.entries, params.assoc),
            params,
            last_reset: 0,
        }
    }

    /// Whether the store at `pc` is predicted to be a barrier: loads
    /// younger than it must wait for it to execute.
    pub fn predicts_barrier(&self, pc: u64) -> bool {
        matches!(self.table.peek(pc), Some(&c) if c >= self.params.threshold)
    }

    /// Records that the store at `pc` was the producer in a memory
    /// dependence mis-speculation.
    pub fn record_misspeculation(&mut self, pc: u64) {
        let threshold = self.params.threshold;
        let c = self.table.get_or_insert_with(pc, || 0);
        if *c < threshold {
            *c += 1;
        }
    }

    /// Resets all counters if the configured interval has elapsed.
    pub fn maybe_reset(&mut self, now: u64) {
        if let Some(interval) = self.params.reset_interval {
            if now.saturating_sub(self.last_reset) >= interval {
                self.table.clear();
                self.last_reset = now;
            }
        }
    }

    /// The cycle the next periodic reset fires (`None` when resets are
    /// disabled): `maybe_reset(at)` is a no-op for every `at` before it.
    pub fn next_reset_at(&self) -> Option<u64> {
        self.params
            .reset_interval
            .map(|i| self.last_reset.saturating_add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ConfidenceParams {
        ConfidenceParams {
            entries: 16,
            assoc: 2,
            threshold: 3,
            reset_interval: Some(100),
        }
    }

    #[test]
    fn arms_per_store() {
        let mut p = StoreBarrierPredictor::new(small());
        for _ in 0..3 {
            p.record_misspeculation(0x80);
        }
        assert!(p.predicts_barrier(0x80));
        assert!(!p.predicts_barrier(0x84));
    }

    #[test]
    fn below_threshold_is_not_a_barrier() {
        let mut p = StoreBarrierPredictor::new(small());
        p.record_misspeculation(0x80);
        p.record_misspeculation(0x80);
        assert!(!p.predicts_barrier(0x80));
    }

    #[test]
    fn reset_disarms() {
        let mut p = StoreBarrierPredictor::new(small());
        for _ in 0..3 {
            p.record_misspeculation(0x80);
        }
        p.maybe_reset(200);
        assert!(!p.predicts_barrier(0x80));
    }
}
