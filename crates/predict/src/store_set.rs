//! Store-set memory dependence predictor (Chrysos & Emer, ISCA 1998).
//!
//! Implemented as an *extension* beyond the paper's five policies: the
//! paper cites store sets as the split-window state of the art; the
//! ablation benches compare it against the MDPT speculation /
//! synchronization mechanism under the continuous window.
//!
//! Two structures: the Store Set ID Table (SSIT), indexed by instruction
//! PC, maps loads and stores to a store-set ID (SSID); the Last Fetched
//! Store Table (LFST), indexed by SSID, holds the sequence number of the
//! most recently dispatched store of that set.

/// Configuration of the store-set predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSetParams {
    /// SSIT entries (direct-mapped, PC-indexed).
    pub ssit_entries: usize,
    /// LFST entries (one per SSID).
    pub lfst_entries: usize,
    /// Cyclic-clear period in cycles (`None` disables).
    pub clear_interval: Option<u64>,
}

impl StoreSetParams {
    /// Chrysos & Emer's evaluated configuration: 16K SSIT, 4K LFST,
    /// cyclic clearing (we default to the paper's 1M-cycle period).
    pub fn reference() -> StoreSetParams {
        StoreSetParams {
            ssit_entries: 16 * 1024,
            lfst_entries: 4 * 1024,
            clear_interval: Some(1_000_000),
        }
    }
}

/// The store-set predictor.
///
/// # Examples
///
/// ```
/// use mds_predict::{StoreSetParams, StoreSets};
///
/// let mut p = StoreSets::new(StoreSetParams::reference());
/// p.record_violation(0x100, 0x200);
/// // On the next traversal, the store is dispatched first ...
/// p.dispatch_store(0x200, 42);
/// // ... and the load is told to wait for store #42.
/// assert_eq!(p.dispatch_load(0x100), Some(42));
/// ```
#[derive(Debug, Clone)]
pub struct StoreSets {
    params: StoreSetParams,
    ssit: Vec<Option<u32>>,
    lfst: Vec<Option<u64>>,
    next_ssid: u32,
    last_clear: u64,
}

impl StoreSets {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if either table size is not a power of two.
    pub fn new(params: StoreSetParams) -> StoreSets {
        assert!(params.ssit_entries.is_power_of_two());
        assert!(params.lfst_entries.is_power_of_two());
        StoreSets {
            ssit: vec![None; params.ssit_entries],
            lfst: vec![None; params.lfst_entries],
            params,
            next_ssid: 0,
            last_clear: 0,
        }
    }

    #[inline]
    fn ssit_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.ssit.len() - 1)
    }

    #[inline]
    fn lfst_index(&self, ssid: u32) -> usize {
        ssid as usize & (self.lfst.len() - 1)
    }

    /// Records a violation between the load at `load_pc` and the store at
    /// `store_pc`, merging their store sets per the Chrysos & Emer
    /// assignment rules.
    pub fn record_violation(&mut self, load_pc: u64, store_pc: u64) {
        let li = self.ssit_index(load_pc);
        let si = self.ssit_index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let ssid = self.next_ssid;
                self.next_ssid = self.next_ssid.wrapping_add(1);
                self.ssit[li] = Some(ssid);
                self.ssit[si] = Some(ssid);
            }
            (Some(ssid), None) => self.ssit[si] = Some(ssid),
            (None, Some(ssid)) => self.ssit[li] = Some(ssid),
            (Some(a), Some(b)) => {
                // Both assigned: the one with the smaller SSID wins
                // (declining-SSID merge rule).
                let winner = a.min(b);
                self.ssit[li] = Some(winner);
                self.ssit[si] = Some(winner);
            }
        }
    }

    /// A store with sequence number `seq` is dispatched: returns the
    /// sequence number of the previous in-flight store of the same set
    /// (which this store must order behind, in the full store-set scheme),
    /// and becomes the set's last fetched store.
    pub fn dispatch_store(&mut self, pc: u64, seq: u64) -> Option<u64> {
        let ssid = self.ssit[self.ssit_index(pc)]?;
        let i = self.lfst_index(ssid);
        let prev = self.lfst[i];
        self.lfst[i] = Some(seq);
        prev
    }

    /// A load is dispatched: returns the sequence number of the store it
    /// should wait for, if its PC belongs to a store set with an
    /// in-flight store.
    pub fn dispatch_load(&mut self, pc: u64) -> Option<u64> {
        let ssid = self.ssit[self.ssit_index(pc)]?;
        self.lfst[self.lfst_index(ssid)]
    }

    /// A store issued (executed): clears its LFST entry if it is still the
    /// set's last fetched store, releasing waiting loads.
    pub fn issue_store(&mut self, pc: u64, seq: u64) {
        if let Some(ssid) = self.ssit[self.ssit_index(pc)] {
            let i = self.lfst_index(ssid);
            if self.lfst[i] == Some(seq) {
                self.lfst[i] = None;
            }
        }
    }

    /// A store was squashed: same LFST invalidation as issue.
    pub fn squash_store(&mut self, pc: u64, seq: u64) {
        self.issue_store(pc, seq);
    }

    /// Cyclically clears both tables if the interval has elapsed.
    pub fn maybe_clear(&mut self, now: u64) {
        if let Some(interval) = self.params.clear_interval {
            if now.saturating_sub(self.last_clear) >= interval {
                self.ssit.iter_mut().for_each(|e| *e = None);
                self.lfst.iter_mut().for_each(|e| *e = None);
                self.last_clear = now;
            }
        }
    }

    /// The cycle the next periodic clear fires (`None` when clearing is
    /// disabled): `maybe_clear(at)` is a no-op for every `at` before it.
    pub fn next_clear_at(&self) -> Option<u64> {
        self.params
            .clear_interval
            .map(|i| self.last_clear.saturating_add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StoreSetParams {
        StoreSetParams {
            ssit_entries: 64,
            lfst_entries: 16,
            clear_interval: Some(100),
        }
    }

    #[test]
    fn unknown_load_is_unconstrained() {
        let mut p = StoreSets::new(small());
        assert_eq!(p.dispatch_load(0x100), None);
    }

    #[test]
    fn violation_creates_a_set_and_orders_load_after_store() {
        let mut p = StoreSets::new(small());
        p.record_violation(0x100, 0x200);
        assert_eq!(p.dispatch_store(0x200, 7), None);
        assert_eq!(p.dispatch_load(0x100), Some(7));
    }

    #[test]
    fn issue_releases_waiting_loads() {
        let mut p = StoreSets::new(small());
        p.record_violation(0x100, 0x200);
        p.dispatch_store(0x200, 7);
        p.issue_store(0x200, 7);
        assert_eq!(p.dispatch_load(0x100), None);
    }

    #[test]
    fn stale_issue_does_not_clear_newer_store() {
        let mut p = StoreSets::new(small());
        p.record_violation(0x100, 0x200);
        p.dispatch_store(0x200, 7);
        p.dispatch_store(0x200, 9); // newer instance
        p.issue_store(0x200, 7); // stale
        assert_eq!(p.dispatch_load(0x100), Some(9));
    }

    #[test]
    fn two_stores_serialize_through_the_set() {
        let mut p = StoreSets::new(small());
        p.record_violation(0x100, 0x200);
        p.record_violation(0x100, 0x204); // merge second store into the set
        assert_eq!(p.dispatch_store(0x200, 5), None);
        assert_eq!(
            p.dispatch_store(0x204, 6),
            Some(5),
            "same set serializes stores"
        );
        assert_eq!(p.dispatch_load(0x100), Some(6));
    }

    #[test]
    fn merge_prefers_smaller_ssid() {
        let mut p = StoreSets::new(small());
        p.record_violation(0x100, 0x200); // ssid 0
        p.record_violation(0x104, 0x204); // ssid 1
        p.record_violation(0x100, 0x204); // merge -> both ssid 0
        p.dispatch_store(0x204, 11);
        assert_eq!(p.dispatch_load(0x100), Some(11));
    }

    #[test]
    fn cyclic_clear_forgets() {
        let mut p = StoreSets::new(small());
        p.record_violation(0x100, 0x200);
        p.maybe_clear(100);
        p.dispatch_store(0x200, 7);
        assert_eq!(p.dispatch_load(0x100), None);
    }
}
