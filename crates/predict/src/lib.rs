//! # mds-predict — memory dependence predictors
//!
//! The prediction structures behind the paper's memory dependence
//! speculation policies (Moshovos & Sohi, HPCA 2000, Sections 3.5–3.6):
//!
//! * [`SelectivePredictor`] — per-load confidence for **selective**
//!   speculation (`NAS/SEL`): predicted loads are not speculated.
//! * [`StoreBarrierPredictor`] — per-store confidence for the **store
//!   barrier** policy (`NAS/STORE`): all loads wait for predicted stores.
//! * [`Mdpt`] — the memory dependence prediction table with synonym
//!   indirection for **speculation/synchronization** (`NAS/SYNC`).
//! * [`StoreSets`] — the Chrysos & Emer store-set predictor, provided as
//!   an extension for the ablation benchmarks.
//!
//! All tables default to the paper's parameters: 4K entries, 2-way set
//! associative, 3 mis-speculations to arm a confidence entry, and a
//! one-million-cycle periodic reset/flush.
//!
//! # Examples
//!
//! ```
//! use mds_predict::{Mdpt, MdptParams};
//!
//! let mut mdpt = Mdpt::new(MdptParams::paper());
//! mdpt.record_violation(0x4005f0, 0x4003a8);
//! assert_eq!(mdpt.load_synonym(0x4005f0), mdpt.store_synonym(0x4003a8));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod mdpt;
mod selective;
mod store_barrier;
mod store_set;
mod table;

pub use mdpt::{Mdpt, MdptParams, Synonym, SynonymWaitLists};
pub use selective::{ConfidenceParams, SelectivePredictor};
pub use store_barrier::StoreBarrierPredictor;
pub use store_set::{StoreSetParams, StoreSets};
pub use table::PcTable;
