//! Memory dependence prediction table (MDPT) for
//! speculation/synchronization (Section 3.6; Moshovos et al. 1997).
//!
//! On a mis-speculation, entries are allocated for the offending load and
//! store. Dependences are represented through *synonyms* — a level of
//! indirection: the load and store are both tagged with the same synonym,
//! and the core synchronizes a predicted load with the closest preceding
//! in-flight store carrying the same synonym. The paper's configuration:
//! 4K entries, 2-way, separate entries for loads and stores, no
//! confidence (once allocated, synchronization is always enforced), full
//! flush every one million cycles to shed stale (false) dependences.

use crate::table::PcTable;

/// A synonym: the indirection tag linking predicted-dependent loads and
/// stores.
pub type Synonym = u32;

/// Configuration of the MDPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdptParams {
    /// Total table entries (shared by load and store entries).
    pub entries: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Flush period in cycles (`None` disables flushing).
    pub flush_interval: Option<u64>,
}

impl MdptParams {
    /// The paper's configuration: 4K entries, 2-way, 1M-cycle flush.
    pub fn paper() -> MdptParams {
        MdptParams {
            entries: 4096,
            assoc: 2,
            flush_interval: Some(1_000_000),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    synonym: Synonym,
}

/// The memory dependence prediction table.
///
/// Loads and stores occupy separate entries; both sides of a violated
/// dependence receive the same synonym. Lookups are by instruction PC.
///
/// # Examples
///
/// ```
/// use mds_predict::{Mdpt, MdptParams};
///
/// let mut t = Mdpt::new(MdptParams::paper());
/// t.record_violation(0x100, 0x200); // load pc, store pc
/// let l = t.load_synonym(0x100).unwrap();
/// let s = t.store_synonym(0x200).unwrap();
/// assert_eq!(l, s);
/// ```
#[derive(Debug, Clone)]
pub struct Mdpt {
    params: MdptParams,
    loads: PcTable<Entry>,
    stores: PcTable<Entry>,
    next_synonym: Synonym,
    last_flush: u64,
    allocations: u64,
}

impl Mdpt {
    /// Creates an empty MDPT. The entry budget is split evenly between
    /// load and store entries.
    pub fn new(params: MdptParams) -> Mdpt {
        let half = (params.entries / 2).max(params.assoc);
        Mdpt {
            loads: PcTable::new(half.next_power_of_two(), params.assoc),
            stores: PcTable::new(half.next_power_of_two(), params.assoc),
            params,
            next_synonym: 1,
            last_flush: 0,
            allocations: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &MdptParams {
        &self.params
    }

    /// Total entry allocations performed (diagnostic).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Records a violated dependence between the load at `load_pc` and
    /// the store at `store_pc`, allocating (or linking) entries for both.
    ///
    /// If either instruction already has an entry, its synonym is reused
    /// so that multiple loads depending on one store (or one load
    /// depending on multiple stores) converge on a common synonym.
    pub fn record_violation(&mut self, load_pc: u64, store_pc: u64) {
        let synonym = match (self.loads.peek(load_pc), self.stores.peek(store_pc)) {
            (_, Some(e)) => e.synonym, // prefer the store's existing tag
            (Some(e), None) => e.synonym,
            (None, None) => {
                let s = self.next_synonym;
                self.next_synonym = self.next_synonym.wrapping_add(1).max(1);
                s
            }
        };
        self.allocations += 2;
        self.loads.insert(load_pc, Entry { synonym });
        self.stores.insert(store_pc, Entry { synonym });
    }

    /// The synonym the load at `pc` must synchronize on, if predicted.
    pub fn load_synonym(&self, pc: u64) -> Option<Synonym> {
        self.loads.peek(pc).map(|e| e.synonym)
    }

    /// The synonym the store at `pc` produces, if predicted.
    pub fn store_synonym(&self, pc: u64) -> Option<Synonym> {
        self.stores.peek(pc).map(|e| e.synonym)
    }

    /// Flushes the whole table if the configured interval has elapsed
    /// ("to reduce the frequency of false dependences", Section 3.6).
    pub fn maybe_flush(&mut self, now: u64) {
        if let Some(interval) = self.params.flush_interval {
            if now.saturating_sub(self.last_flush) >= interval {
                self.loads.clear();
                self.stores.clear();
                self.last_flush = now;
            }
        }
    }

    /// The cycle the next periodic flush fires (`None` when flushing is
    /// disabled): `maybe_flush(at)` is a no-op for every `at` before it.
    pub fn next_flush_at(&self) -> Option<u64> {
        self.params
            .flush_interval
            .map(|i| self.last_flush.saturating_add(i))
    }
}

/// Per-synonym, sequence-ordered lists of in-flight stores: the
/// scheduler-side index for `NAS/SYNC` synchronization.
///
/// Instead of scanning the instruction window for the closest preceding
/// store carrying a load's synonym, the core registers every dispatched
/// synonym-tagged store here (and removes it at commit, or truncates on
/// squash) and answers the gate with one hash lookup plus a binary
/// search.
///
/// # Examples
///
/// ```
/// use mds_predict::SynonymWaitLists;
///
/// let mut w = SynonymWaitLists::new();
/// w.insert(7, 10);
/// w.insert(7, 30);
/// assert_eq!(w.closest_older(7, 25), Some(10));
/// assert_eq!(w.closest_older(7, 31), Some(30));
/// w.squash_from(30);
/// assert_eq!(w.closest_older(7, 31), Some(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SynonymWaitLists {
    lists: std::collections::HashMap<Synonym, Vec<u64>>,
}

impl SynonymWaitLists {
    /// Creates an empty index.
    pub fn new() -> SynonymWaitLists {
        SynonymWaitLists::default()
    }

    /// Registers an in-flight store carrying `synonym`. Idempotent, and
    /// O(1) for in-order dispatch (ascending `seq`).
    pub fn insert(&mut self, synonym: Synonym, seq: u64) {
        let list = self.lists.entry(synonym).or_default();
        match list.last() {
            Some(&last) if last < seq => list.push(seq),
            Some(&last) if last == seq => {}
            _ => {
                if let Err(pos) = list.binary_search(&seq) {
                    list.insert(pos, seq);
                }
            }
        }
    }

    /// Removes a store (it left the window by committing). No-op when
    /// the store was never registered.
    pub fn remove(&mut self, synonym: Synonym, seq: u64) {
        if let Some(list) = self.lists.get_mut(&synonym) {
            if let Ok(pos) = list.binary_search(&seq) {
                list.remove(pos);
            }
            if list.is_empty() {
                self.lists.remove(&synonym);
            }
        }
    }

    /// Drops every store with `seq >= from` (squash recovery).
    pub fn squash_from(&mut self, from: u64) {
        self.lists.retain(|_, list| {
            list.truncate(list.partition_point(|&s| s < from));
            !list.is_empty()
        });
    }

    /// The youngest registered store older than `seq` carrying
    /// `synonym` — the store a `NAS/SYNC` load must synchronize with.
    pub fn closest_older(&self, synonym: Synonym, seq: u64) -> Option<u64> {
        let list = self.lists.get(&synonym)?;
        let pos = list.partition_point(|&s| s < seq);
        pos.checked_sub(1).map(|i| list[i])
    }

    /// Total registered stores across all synonyms.
    pub fn len(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }

    /// Whether no store is registered.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MdptParams {
        MdptParams {
            entries: 32,
            assoc: 2,
            flush_interval: Some(100),
        }
    }

    #[test]
    fn violation_links_load_and_store() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        assert_eq!(t.load_synonym(0x100), t.store_synonym(0x200));
        assert!(t.load_synonym(0x100).is_some());
    }

    #[test]
    fn unknown_pcs_have_no_synonym() {
        let t = Mdpt::new(small());
        assert_eq!(t.load_synonym(0x100), None);
        assert_eq!(t.store_synonym(0x200), None);
    }

    #[test]
    fn two_loads_one_store_share_a_synonym() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.record_violation(0x104, 0x200);
        assert_eq!(t.load_synonym(0x100), t.load_synonym(0x104));
    }

    #[test]
    fn one_load_two_stores_share_a_synonym() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.record_violation(0x100, 0x204);
        // The load keeps one synonym; both stores produce it.
        assert_eq!(t.store_synonym(0x200), t.load_synonym(0x100));
        assert_eq!(t.store_synonym(0x204), t.load_synonym(0x100));
    }

    #[test]
    fn distinct_dependences_get_distinct_synonyms() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.record_violation(0x104, 0x204);
        assert_ne!(t.load_synonym(0x100), t.load_synonym(0x104));
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.maybe_flush(99);
        assert!(t.load_synonym(0x100).is_some());
        t.maybe_flush(100);
        assert_eq!(t.load_synonym(0x100), None);
        assert_eq!(t.store_synonym(0x200), None);
    }

    #[test]
    fn wait_lists_track_closest_older_store() {
        let mut w = SynonymWaitLists::new();
        assert!(w.is_empty());
        assert_eq!(w.closest_older(1, 100), None);
        w.insert(1, 5);
        w.insert(1, 9);
        w.insert(2, 7);
        assert_eq!(w.len(), 3);
        assert_eq!(w.closest_older(1, 9), Some(5));
        assert_eq!(w.closest_older(1, 10), Some(9));
        assert_eq!(w.closest_older(1, 5), None);
        assert_eq!(w.closest_older(2, 100), Some(7));
        assert_eq!(w.closest_older(3, 100), None);
    }

    #[test]
    fn wait_list_insert_is_idempotent_and_handles_out_of_order() {
        let mut w = SynonymWaitLists::new();
        w.insert(1, 9); // split window: younger store dispatches first
        w.insert(1, 5);
        w.insert(1, 5);
        assert_eq!(w.len(), 2);
        assert_eq!(w.closest_older(1, 9), Some(5));
    }

    #[test]
    fn wait_list_commit_and_squash_remove_entries() {
        let mut w = SynonymWaitLists::new();
        for seq in [2, 4, 6, 8] {
            w.insert(3, seq);
        }
        w.remove(3, 2); // committed
        assert_eq!(w.closest_older(3, 5), Some(4));
        w.remove(3, 99); // absent: no-op
        w.squash_from(6);
        assert_eq!(w.closest_older(3, 100), Some(4));
        assert_eq!(w.len(), 1);
        // Sequence numbers are reused after a squash: re-insertion works.
        w.insert(3, 6);
        assert_eq!(w.closest_older(3, 100), Some(6));
    }

    #[test]
    fn loads_and_stores_have_separate_entries() {
        let mut t = Mdpt::new(small());
        // Same pc used as both a load and a store must not collide.
        t.record_violation(0x100, 0x100);
        assert!(t.load_synonym(0x100).is_some());
        assert!(t.store_synonym(0x100).is_some());
    }
}
