//! Memory dependence prediction table (MDPT) for
//! speculation/synchronization (Section 3.6; Moshovos et al. 1997).
//!
//! On a mis-speculation, entries are allocated for the offending load and
//! store. Dependences are represented through *synonyms* — a level of
//! indirection: the load and store are both tagged with the same synonym,
//! and the core synchronizes a predicted load with the closest preceding
//! in-flight store carrying the same synonym. The paper's configuration:
//! 4K entries, 2-way, separate entries for loads and stores, no
//! confidence (once allocated, synchronization is always enforced), full
//! flush every one million cycles to shed stale (false) dependences.

use crate::table::PcTable;

/// A synonym: the indirection tag linking predicted-dependent loads and
/// stores.
pub type Synonym = u32;

/// Configuration of the MDPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdptParams {
    /// Total table entries (shared by load and store entries).
    pub entries: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Flush period in cycles (`None` disables flushing).
    pub flush_interval: Option<u64>,
}

impl MdptParams {
    /// The paper's configuration: 4K entries, 2-way, 1M-cycle flush.
    pub fn paper() -> MdptParams {
        MdptParams {
            entries: 4096,
            assoc: 2,
            flush_interval: Some(1_000_000),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    synonym: Synonym,
}

/// The memory dependence prediction table.
///
/// Loads and stores occupy separate entries; both sides of a violated
/// dependence receive the same synonym. Lookups are by instruction PC.
///
/// # Examples
///
/// ```
/// use mds_predict::{Mdpt, MdptParams};
///
/// let mut t = Mdpt::new(MdptParams::paper());
/// t.record_violation(0x100, 0x200); // load pc, store pc
/// let l = t.load_synonym(0x100).unwrap();
/// let s = t.store_synonym(0x200).unwrap();
/// assert_eq!(l, s);
/// ```
#[derive(Debug, Clone)]
pub struct Mdpt {
    params: MdptParams,
    loads: PcTable<Entry>,
    stores: PcTable<Entry>,
    next_synonym: Synonym,
    last_flush: u64,
    allocations: u64,
}

impl Mdpt {
    /// Creates an empty MDPT. The entry budget is split evenly between
    /// load and store entries.
    pub fn new(params: MdptParams) -> Mdpt {
        let half = (params.entries / 2).max(params.assoc);
        Mdpt {
            loads: PcTable::new(half.next_power_of_two(), params.assoc),
            stores: PcTable::new(half.next_power_of_two(), params.assoc),
            params,
            next_synonym: 1,
            last_flush: 0,
            allocations: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &MdptParams {
        &self.params
    }

    /// Total entry allocations performed (diagnostic).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Records a violated dependence between the load at `load_pc` and
    /// the store at `store_pc`, allocating (or linking) entries for both.
    ///
    /// If either instruction already has an entry, its synonym is reused
    /// so that multiple loads depending on one store (or one load
    /// depending on multiple stores) converge on a common synonym.
    pub fn record_violation(&mut self, load_pc: u64, store_pc: u64) {
        let synonym = match (self.loads.peek(load_pc), self.stores.peek(store_pc)) {
            (_, Some(e)) => e.synonym, // prefer the store's existing tag
            (Some(e), None) => e.synonym,
            (None, None) => {
                let s = self.next_synonym;
                self.next_synonym = self.next_synonym.wrapping_add(1).max(1);
                s
            }
        };
        self.allocations += 2;
        self.loads.insert(load_pc, Entry { synonym });
        self.stores.insert(store_pc, Entry { synonym });
    }

    /// The synonym the load at `pc` must synchronize on, if predicted.
    pub fn load_synonym(&self, pc: u64) -> Option<Synonym> {
        self.loads.peek(pc).map(|e| e.synonym)
    }

    /// The synonym the store at `pc` produces, if predicted.
    pub fn store_synonym(&self, pc: u64) -> Option<Synonym> {
        self.stores.peek(pc).map(|e| e.synonym)
    }

    /// Flushes the whole table if the configured interval has elapsed
    /// ("to reduce the frequency of false dependences", Section 3.6).
    pub fn maybe_flush(&mut self, now: u64) {
        if let Some(interval) = self.params.flush_interval {
            if now.saturating_sub(self.last_flush) >= interval {
                self.loads.clear();
                self.stores.clear();
                self.last_flush = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MdptParams {
        MdptParams {
            entries: 32,
            assoc: 2,
            flush_interval: Some(100),
        }
    }

    #[test]
    fn violation_links_load_and_store() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        assert_eq!(t.load_synonym(0x100), t.store_synonym(0x200));
        assert!(t.load_synonym(0x100).is_some());
    }

    #[test]
    fn unknown_pcs_have_no_synonym() {
        let t = Mdpt::new(small());
        assert_eq!(t.load_synonym(0x100), None);
        assert_eq!(t.store_synonym(0x200), None);
    }

    #[test]
    fn two_loads_one_store_share_a_synonym() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.record_violation(0x104, 0x200);
        assert_eq!(t.load_synonym(0x100), t.load_synonym(0x104));
    }

    #[test]
    fn one_load_two_stores_share_a_synonym() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.record_violation(0x100, 0x204);
        // The load keeps one synonym; both stores produce it.
        assert_eq!(t.store_synonym(0x200), t.load_synonym(0x100));
        assert_eq!(t.store_synonym(0x204), t.load_synonym(0x100));
    }

    #[test]
    fn distinct_dependences_get_distinct_synonyms() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.record_violation(0x104, 0x204);
        assert_ne!(t.load_synonym(0x100), t.load_synonym(0x104));
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Mdpt::new(small());
        t.record_violation(0x100, 0x200);
        t.maybe_flush(99);
        assert!(t.load_synonym(0x100).is_some());
        t.maybe_flush(100);
        assert_eq!(t.load_synonym(0x100), None);
        assert_eq!(t.store_synonym(0x200), None);
    }

    #[test]
    fn loads_and_stores_have_separate_entries() {
        let mut t = Mdpt::new(small());
        // Same pc used as both a load and a store must not collide.
        t.record_violation(0x100, 0x100);
        assert!(t.load_synonym(0x100).is_some());
        assert!(t.store_synonym(0x100).is_some());
    }
}
