//! Generic PC-indexed set-associative table with LRU replacement, the
//! storage structure shared by all memory dependence predictors (the
//! paper uses 4K-entry, 2-way tables throughout Sections 3.5–3.6).

/// A set-associative, PC-tagged table with LRU replacement.
#[derive(Debug, Clone)]
pub struct PcTable<T> {
    sets: usize,
    assoc: usize,
    entries: Vec<Option<(u64, T)>>, // (pc tag, payload) per way
    lru: Vec<u64>,
    tick: u64,
}

impl<T> PcTable<T> {
    /// Creates a table with `entries` total entries and the given
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or not divisible by
    /// `assoc`, or if `assoc` is zero.
    pub fn new(entries: usize, assoc: usize) -> PcTable<T> {
        assert!(assoc > 0, "associativity must be positive");
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert_eq!(entries % assoc, 0, "entries must divide evenly into ways");
        let sets = entries / assoc;
        PcTable {
            sets,
            assoc,
            entries: (0..entries).map(|_| None).collect(),
            lru: vec![0; entries],
            tick: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Looks up the payload for `pc`, updating recency.
    pub fn get(&mut self, pc: u64) -> Option<&T> {
        self.tick += 1;
        let base = self.set_of(pc) * self.assoc;
        for w in 0..self.assoc {
            if let Some((tag, _)) = &self.entries[base + w] {
                if *tag == pc {
                    self.lru[base + w] = self.tick;
                    return self.entries[base + w].as_ref().map(|(_, v)| v);
                }
            }
        }
        None
    }

    /// Looks up the payload for `pc` without updating recency.
    pub fn peek(&self, pc: u64) -> Option<&T> {
        let base = self.set_of(pc) * self.assoc;
        (0..self.assoc).find_map(|w| match &self.entries[base + w] {
            Some((tag, v)) if *tag == pc => Some(v),
            _ => None,
        })
    }

    /// Mutable lookup, updating recency.
    pub fn get_mut(&mut self, pc: u64) -> Option<&mut T> {
        self.tick += 1;
        let base = self.set_of(pc) * self.assoc;
        for w in 0..self.assoc {
            if let Some((tag, _)) = &self.entries[base + w] {
                if *tag == pc {
                    self.lru[base + w] = self.tick;
                    return self.entries[base + w].as_mut().map(|(_, v)| v);
                }
            }
        }
        None
    }

    /// Inserts (or replaces) the entry for `pc`, evicting the set's LRU
    /// way if necessary. Returns the evicted `(pc, payload)` if any.
    pub fn insert(&mut self, pc: u64, value: T) -> Option<(u64, T)> {
        self.tick += 1;
        let base = self.set_of(pc) * self.assoc;
        // Existing entry for the same pc: replace in place.
        for w in 0..self.assoc {
            if matches!(&self.entries[base + w], Some((tag, _)) if *tag == pc) {
                self.lru[base + w] = self.tick;
                return self.entries[base + w].replace((pc, value));
            }
        }
        // Free way.
        for w in 0..self.assoc {
            if self.entries[base + w].is_none() {
                self.lru[base + w] = self.tick;
                self.entries[base + w] = Some((pc, value));
                return None;
            }
        }
        // Evict LRU.
        let victim = (0..self.assoc)
            .min_by_key(|&w| self.lru[base + w])
            .expect("assoc >= 1");
        self.lru[base + victim] = self.tick;
        self.entries[base + victim].replace((pc, value))
    }

    /// Gets the entry for `pc`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, pc: u64, default: impl FnOnce() -> T) -> &mut T {
        if self.peek(pc).is_none() {
            self.insert(pc, default());
        }
        self.get_mut(pc).expect("just inserted")
    }

    /// Invalidates every entry.
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get() {
        let mut t = PcTable::new(8, 2);
        t.insert(0x100, 7u32);
        assert_eq!(t.get(0x100), Some(&7));
        assert_eq!(t.get(0x104), None);
    }

    #[test]
    fn replace_same_pc_keeps_one_entry() {
        let mut t = PcTable::new(8, 2);
        t.insert(0x100, 1u32);
        let old = t.insert(0x100, 2u32);
        assert_eq!(old, Some((0x100, 1)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0x100), Some(&2));
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut t = PcTable::new(8, 2); // 4 sets
                                        // Three pcs in the same set (stride = sets * 4 bytes = 16).
        let (a, b, c) = (0x100, 0x110, 0x120);
        t.insert(a, 1u32);
        t.insert(b, 2u32);
        t.get(a); // b is now LRU
        let evicted = t.insert(c, 3u32);
        assert_eq!(evicted, Some((b, 2)));
        assert!(t.peek(a).is_some());
        assert!(t.peek(b).is_none());
        assert!(t.peek(c).is_some());
    }

    #[test]
    fn get_or_insert_with_defaults_once() {
        let mut t = PcTable::new(8, 2);
        *t.get_or_insert_with(0x100, || 0u32) += 1;
        *t.get_or_insert_with(0x100, || 0u32) += 1;
        assert_eq!(t.peek(0x100), Some(&2));
    }

    #[test]
    fn clear_empties() {
        let mut t = PcTable::new(8, 2);
        t.insert(0x100, 1u32);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut t = PcTable::new(8, 2);
        let (a, b, c) = (0x100, 0x110, 0x120);
        t.insert(a, 1u32);
        t.insert(b, 2u32);
        t.peek(a); // must NOT refresh a
        let evicted = t.insert(c, 3u32);
        assert_eq!(evicted, Some((a, 1)), "peek must not update recency");
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        let _ = PcTable::<u32>::new(12, 2);
    }
}
