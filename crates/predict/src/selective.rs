//! Selective memory dependence speculation predictor (Section 3.5).
//!
//! Predicts, per *load*, whether immediate speculation is likely to
//! violate a dependence. Predicted loads are not speculated: they wait
//! until all their ambiguous dependences resolve. The paper's
//! configuration: 4K-entry 2-way table of 2-bit saturating confidence
//! counters; 3 mis-speculations arm an entry; all counters reset every
//! one million cycles.

use crate::table::PcTable;

/// Configuration shared by the confidence-counter predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidenceParams {
    /// Total table entries.
    pub entries: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Mis-speculations before a dependence is predicted (counter
    /// saturation threshold).
    pub threshold: u8,
    /// Counter reset period in cycles (`None` disables resets).
    pub reset_interval: Option<u64>,
}

impl ConfidenceParams {
    /// The paper's configuration: 4K entries, 2-way, threshold 3, reset
    /// every one million cycles.
    pub fn paper() -> ConfidenceParams {
        ConfidenceParams {
            entries: 4096,
            assoc: 2,
            threshold: 3,
            reset_interval: Some(1_000_000),
        }
    }
}

/// Per-load confidence predictor for selective speculation.
///
/// # Examples
///
/// ```
/// use mds_predict::{ConfidenceParams, SelectivePredictor};
///
/// let mut p = SelectivePredictor::new(ConfidenceParams::paper());
/// assert!(!p.predicts_dependence(0x1000));
/// for _ in 0..3 {
///     p.record_misspeculation(0x1000);
/// }
/// assert!(p.predicts_dependence(0x1000)); // armed after 3 mis-speculations
/// ```
#[derive(Debug, Clone)]
pub struct SelectivePredictor {
    params: ConfidenceParams,
    table: PcTable<u8>,
    last_reset: u64,
}

impl SelectivePredictor {
    /// Creates a predictor with the given parameters.
    pub fn new(params: ConfidenceParams) -> SelectivePredictor {
        SelectivePredictor {
            table: PcTable::new(params.entries, params.assoc),
            params,
            last_reset: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &ConfidenceParams {
        &self.params
    }

    /// Whether the load at `pc` is predicted to have a dependence (and so
    /// should not be speculated).
    pub fn predicts_dependence(&self, pc: u64) -> bool {
        matches!(self.table.peek(pc), Some(&c) if c >= self.params.threshold)
    }

    /// Records a memory dependence mis-speculation by the load at `pc`.
    pub fn record_misspeculation(&mut self, pc: u64) {
        let threshold = self.params.threshold;
        let c = self.table.get_or_insert_with(pc, || 0);
        if *c < threshold {
            *c += 1;
        }
    }

    /// Resets all counters if the configured interval has elapsed since
    /// the last reset ("to allow adapting back", Section 3.5).
    pub fn maybe_reset(&mut self, now: u64) {
        if let Some(interval) = self.params.reset_interval {
            if now.saturating_sub(self.last_reset) >= interval {
                self.table.clear();
                self.last_reset = now;
            }
        }
    }

    /// The cycle the next periodic reset fires (`None` when resets are
    /// disabled): `maybe_reset(at)` is a no-op for every `at` before it.
    pub fn next_reset_at(&self) -> Option<u64> {
        self.params
            .reset_interval
            .map(|i| self.last_reset.saturating_add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ConfidenceParams {
        ConfidenceParams {
            entries: 16,
            assoc: 2,
            threshold: 3,
            reset_interval: Some(100),
        }
    }

    #[test]
    fn arms_after_threshold_misspeculations() {
        let mut p = SelectivePredictor::new(small());
        p.record_misspeculation(0x40);
        p.record_misspeculation(0x40);
        assert!(
            !p.predicts_dependence(0x40),
            "2 of 3 mis-speculations must not arm"
        );
        p.record_misspeculation(0x40);
        assert!(p.predicts_dependence(0x40));
    }

    #[test]
    fn independent_pcs_do_not_interfere() {
        let mut p = SelectivePredictor::new(small());
        for _ in 0..3 {
            p.record_misspeculation(0x40);
        }
        assert!(!p.predicts_dependence(0x44));
    }

    #[test]
    fn reset_clears_after_interval() {
        let mut p = SelectivePredictor::new(small());
        for _ in 0..3 {
            p.record_misspeculation(0x40);
        }
        p.maybe_reset(50);
        assert!(p.predicts_dependence(0x40), "interval not yet elapsed");
        p.maybe_reset(150);
        assert!(!p.predicts_dependence(0x40), "counters must reset");
    }

    #[test]
    fn reset_can_be_disabled() {
        let mut p = SelectivePredictor::new(ConfidenceParams {
            reset_interval: None,
            ..small()
        });
        for _ in 0..3 {
            p.record_misspeculation(0x40);
        }
        p.maybe_reset(u64::MAX);
        assert!(p.predicts_dependence(0x40));
    }

    #[test]
    fn counter_saturates_at_threshold() {
        let mut p = SelectivePredictor::new(small());
        for _ in 0..100 {
            p.record_misspeculation(0x40);
        }
        assert!(p.predicts_dependence(0x40));
    }
}
