//! Store buffer with load forwarding.
//!
//! The paper's store buffer (Table 2) holds 128 entries, combines store
//! data for load forwarding, and does not combine store requests to the
//! L1 data cache. Entries are identified by the *sequence number* of the
//! owning dynamic store so the core can squash speculative entries.

/// Result of a forwarding lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forward {
    /// A single older store fully covers the load.
    Hit {
        /// The forwarded value, masked to the load width.
        value: u64,
        /// The sequence number of the supplying store.
        store_seq: u64,
    },
    /// One or more older stores overlap the load without one fully
    /// covering it; the load must wait for the stores to drain.
    Partial,
    /// No older store overlaps the load; it may read the cache.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    seq: u64,
    addr: u64,
    size: u8,
    value: u64,
}

impl Entry {
    // Both predicates go through the overflow-safe helpers: the naive
    // `addr + size` comparisons wrap for addresses within 8 bytes of
    // `u64::MAX` and mis-classify forwarding there.
    fn overlaps(&self, addr: u64, size: u8) -> bool {
        crate::range::ranges_overlap(self.addr, self.size, addr, size)
    }

    fn covers(&self, addr: u64, size: u8) -> bool {
        crate::range::range_covers(self.addr, self.size, addr, size)
    }
}

/// A capacity-bounded store buffer ordered by dynamic sequence number.
///
/// # Examples
///
/// ```
/// use mds_mem::{Forward, StoreBuffer};
///
/// let mut sb = StoreBuffer::new(128);
/// sb.push(10, 0x1000, 4, 0xaabbccdd);
/// assert_eq!(
///     sb.forward(11, 0x1000, 4),
///     Forward::Hit { value: 0xaabbccdd, store_seq: 10 },
/// );
/// assert_eq!(sb.forward(11, 0x1002, 1), Forward::Hit { value: 0xbb, store_seq: 10 });
/// assert_eq!(sb.forward(9, 0x1000, 4), Forward::Miss); // older than the store
/// assert_eq!(sb.forward(11, 0x0ffe, 4), Forward::Partial); // straddles
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    capacity: usize,
    entries: Vec<Entry>,
}

impl StoreBuffer {
    /// Creates an empty buffer holding at most `capacity` stores.
    pub fn new(capacity: usize) -> StoreBuffer {
        StoreBuffer {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer has no free entry.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Inserts a store, keeping entries ordered by sequence number.
    ///
    /// Stores may execute out of program order (notably across the units
    /// of a split window), so insertion is position-sorted rather than
    /// append-only.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or `seq` is already present.
    pub fn push(&mut self, seq: u64, addr: u64, size: u8, value: u64) {
        assert!(!self.is_full(), "store buffer overflow");
        let mask = if size == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * size)) - 1
        };
        let entry = Entry {
            seq,
            addr,
            size,
            value: value & mask,
        };
        match self.entries.last() {
            Some(last) if last.seq < seq => self.entries.push(entry),
            _ => {
                let pos = self.entries.partition_point(|e| e.seq < seq);
                assert!(
                    self.entries.get(pos).is_none_or(|e| e.seq != seq),
                    "duplicate store sequence number {seq}"
                );
                self.entries.insert(pos, entry);
            }
        }
    }

    /// Forwarding lookup for a load with sequence number `load_seq`
    /// reading `size` bytes at `addr`. Only stores older than the load
    /// (`seq < load_seq`) are considered; the youngest such store wins.
    pub fn forward(&self, load_seq: u64, addr: u64, size: u8) -> Forward {
        for e in self.entries.iter().rev() {
            if e.seq >= load_seq {
                continue;
            }
            if e.covers(addr, size) {
                let shift = 8 * (addr - e.addr);
                let v = e.value >> shift;
                let mask = if size == 8 {
                    u64::MAX
                } else {
                    (1u64 << (8 * size)) - 1
                };
                return Forward::Hit {
                    value: v & mask,
                    store_seq: e.seq,
                };
            }
            if e.overlaps(addr, size) {
                return Forward::Partial;
            }
        }
        Forward::Miss
    }

    /// Removes every store with `seq >= from_seq` (squash recovery).
    pub fn squash_from(&mut self, from_seq: u64) {
        self.entries.retain(|e| e.seq < from_seq);
    }

    /// Removes the single store with the given sequence number once it has
    /// drained to the cache. Returns whether an entry was removed.
    pub fn retire(&mut self, seq: u64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.seq != seq);
        self.entries.len() != before
    }

    /// Removes all stores (used between simulation phases).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn youngest_older_store_wins() {
        let mut sb = StoreBuffer::new(8);
        sb.push(1, 0x100, 4, 0x1111_1111);
        sb.push(2, 0x100, 4, 0x2222_2222);
        assert_eq!(
            sb.forward(3, 0x100, 4),
            Forward::Hit {
                value: 0x2222_2222,
                store_seq: 2
            }
        );
        assert_eq!(
            sb.forward(2, 0x100, 4),
            Forward::Hit {
                value: 0x1111_1111,
                store_seq: 1
            }
        );
    }

    #[test]
    fn partial_overlap_is_reported() {
        let mut sb = StoreBuffer::new(8);
        sb.push(1, 0x100, 2, 0xbeef);
        assert_eq!(sb.forward(2, 0x100, 4), Forward::Partial);
        assert_eq!(sb.forward(2, 0x102, 2), Forward::Miss);
    }

    #[test]
    fn narrow_load_from_wide_store() {
        let mut sb = StoreBuffer::new(8);
        sb.push(1, 0x100, 8, 0x8877_6655_4433_2211);
        assert_eq!(
            sb.forward(2, 0x104, 4),
            Forward::Hit {
                value: 0x8877_6655,
                store_seq: 1
            }
        );
        assert_eq!(
            sb.forward(2, 0x107, 1),
            Forward::Hit {
                value: 0x88,
                store_seq: 1
            }
        );
    }

    #[test]
    fn squash_removes_suffix() {
        let mut sb = StoreBuffer::new(8);
        sb.push(1, 0x100, 4, 1);
        sb.push(5, 0x200, 4, 2);
        sb.push(9, 0x300, 4, 3);
        sb.squash_from(5);
        assert_eq!(sb.len(), 1);
        assert_eq!(
            sb.forward(10, 0x100, 4),
            Forward::Hit {
                value: 1,
                store_seq: 1
            }
        );
        assert_eq!(sb.forward(10, 0x200, 4), Forward::Miss);
        // Pushing after a squash with reused seqs is legal.
        sb.push(5, 0x200, 4, 20);
        assert_eq!(
            sb.forward(10, 0x200, 4),
            Forward::Hit {
                value: 20,
                store_seq: 5
            }
        );
    }

    #[test]
    fn retire_removes_one_entry() {
        let mut sb = StoreBuffer::new(8);
        sb.push(1, 0x100, 4, 1);
        sb.push(2, 0x104, 4, 2);
        assert!(sb.retire(1));
        assert!(!sb.retire(1));
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut sb = StoreBuffer::new(2);
        sb.push(1, 0, 4, 0);
        sb.push(2, 8, 4, 0);
        assert!(sb.is_full());
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.push(1, 0, 4, 0);
        sb.push(2, 8, 4, 0);
    }

    #[test]
    fn out_of_order_push_keeps_seq_order() {
        let mut sb = StoreBuffer::new(4);
        sb.push(5, 0x100, 4, 50);
        sb.push(3, 0x100, 4, 30); // older store executes later
                                  // The youngest older store still wins regardless of push order.
        assert_eq!(
            sb.forward(6, 0x100, 4),
            Forward::Hit {
                value: 50,
                store_seq: 5
            }
        );
        assert_eq!(
            sb.forward(4, 0x100, 4),
            Forward::Hit {
                value: 30,
                store_seq: 3
            }
        );
    }

    #[test]
    #[should_panic]
    fn duplicate_seq_panics() {
        let mut sb = StoreBuffer::new(4);
        sb.push(5, 0, 4, 0);
        sb.push(5, 8, 4, 0);
    }

    #[test]
    fn no_false_forwarding_near_address_space_top() {
        // Regression: `addr + size` used to wrap, so a store at the top
        // of the address space appeared to overlap (or cover) low
        // addresses, corrupting the Hit/Partial/Miss classification.
        let mut sb = StoreBuffer::new(8);
        sb.push(1, u64::MAX - 1, 2, 0xbeef);
        assert_eq!(sb.forward(2, 0, 4), Forward::Miss);
        assert_eq!(sb.forward(2, 4, 8), Forward::Miss);
        assert_eq!(
            sb.forward(2, u64::MAX - 1, 2),
            Forward::Hit {
                value: 0xbeef,
                store_seq: 1
            }
        );
        assert_eq!(
            sb.forward(2, u64::MAX, 1),
            Forward::Hit {
                value: 0xbe,
                store_seq: 1
            }
        );
        // A load straddling the stored bytes is still Partial, not Miss.
        assert_eq!(sb.forward(2, u64::MAX - 3, 4), Forward::Partial);
        // And a low store must not block loads at the top.
        let mut sb = StoreBuffer::new(8);
        sb.push(1, 0, 8, 77);
        assert_eq!(sb.forward(2, u64::MAX - 7, 8), Forward::Miss);
    }

    #[test]
    fn value_is_masked_to_width() {
        let mut sb = StoreBuffer::new(4);
        sb.push(1, 0x100, 1, 0xffff_ffff_ffff_ffab);
        assert_eq!(
            sb.forward(2, 0x100, 1),
            Forward::Hit {
                value: 0xab,
                store_seq: 1
            }
        );
    }
}
