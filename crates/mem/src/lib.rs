//! # mds-mem — cycle-level memory hierarchy substrate
//!
//! The memory system of the `mds` simulator (reproduction of Moshovos &
//! Sohi, HPCA 2000): banked, lockup-free set-associative caches with
//! primary/secondary MSHR limits ([`Cache`]), the composed
//! L1-I/L1-D/L2/main hierarchy ([`MemSystem`]), and a [`StoreBuffer`] with
//! load forwarding. Defaults reproduce Table 2 of the paper.
//!
//! The model is completion-time based: each access resolves immediately to
//! the absolute cycle its data is available, with structural hazards (bank
//! ports, MSHRs) tracked as timestamps. This keeps the out-of-order core
//! simple and the whole simulation deterministic.
//!
//! # Examples
//!
//! ```
//! use mds_mem::{AccessKind, MemConfig, MemSystem};
//!
//! let mut m = MemSystem::new(MemConfig::paper());
//! let t_cold = m.access(AccessKind::Read, 0x1_0000, 0);
//! let t_warm = m.access(AccessKind::Read, 0x1_0000, t_cold);
//! assert_eq!(t_warm - t_cold, 2); // L1D hit latency from Table 2
//! assert_eq!(m.stats().l1d.misses, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod hierarchy;
mod range;
mod stats;
mod store_buffer;

pub use cache::{Access, Cache};
pub use config::{CacheParams, MainMemoryParams, MemConfig, Replacement};
pub use hierarchy::{AccessKind, MemSystem};
pub use range::{range_covers, ranges_overlap};
pub use stats::{CacheStats, MemStats};
pub use store_buffer::{Forward, StoreBuffer};
