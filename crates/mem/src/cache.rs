//! A banked, lockup-free, set-associative cache model.
//!
//! The model is *completion-time based*: every access is resolved
//! immediately into the absolute cycle at which its data is available,
//! with bank port contention and MSHR occupancy tracked as timestamps.
//! This keeps the simulator deterministic and event-free while modeling
//! the structural hazards of Table 2 (bank ports, primary/secondary miss
//! limits).

use crate::config::{CacheParams, Replacement};
use crate::stats::CacheStats;

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU: last access stamp. FIFO: insertion stamp.
    last_use: u64,
    inserted: u64,
}

#[derive(Debug, Clone)]
struct Mshr {
    block: u64,
    fill_at: u64,
    secondaries_used: u32,
}

#[derive(Debug, Clone, Default)]
struct Bank {
    /// Cycle at which the bank port is next free.
    port_free_at: u64,
    mshrs: Vec<Mshr>,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Absolute cycle at which the requested data is available.
    pub complete_at: u64,
    /// Whether the access hit in this cache.
    pub hit: bool,
}

/// A single cache level.
///
/// Misses are filled by a caller-provided `fill` latency (the time for the
/// next level to produce the block), so levels compose without internal
/// references; see [`MemSystem`](crate::MemSystem) for the composed
/// hierarchy.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets_per_bank: u64,
    /// `lines[bank][set * assoc + way]`
    lines: Vec<Vec<Line>>,
    banks: Vec<Bank>,
    use_counter: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(params: CacheParams) -> Cache {
        let sets_per_bank = params.sets_per_bank();
        let lines_per_bank = (sets_per_bank * params.assoc as u64) as usize;
        let lines = (0..params.banks)
            .map(|_| {
                (0..lines_per_bank)
                    .map(|_| Line {
                        tag: 0,
                        valid: false,
                        last_use: 0,
                        inserted: 0,
                    })
                    .collect()
            })
            .collect();
        let banks = vec![Bank::default(); params.banks as usize];
        Cache {
            params,
            sets_per_bank,
            lines,
            banks,
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    // Address decomposition is pure division/modulus on the block number
    // (audited alongside the store-buffer overflow fix): unlike the
    // `addr + size` range math, it cannot overflow anywhere in the u64
    // address space, so accesses at the very top of memory index safely.
    #[inline]
    fn block_of(&self, addr: u64) -> u64 {
        addr / self.params.block_bytes
    }

    #[inline]
    fn bank_of(&self, block: u64) -> usize {
        (block % self.params.banks as u64) as usize
    }

    #[inline]
    fn set_of(&self, block: u64) -> u64 {
        (block / self.params.banks as u64) % self.sets_per_bank
    }

    #[inline]
    fn tag_of(&self, block: u64) -> u64 {
        block / self.params.banks as u64 / self.sets_per_bank
    }

    /// Looks up `addr` without modifying state or timing (for tests and
    /// warm-up checks).
    pub fn probe(&self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let bank = self.bank_of(block);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = (set * self.params.assoc as u64) as usize;
        self.lines[bank][base..base + self.params.assoc as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `addr` at cycle `now`.
    ///
    /// On a miss, `fill_latency` cycles (the next level's response time,
    /// measured from when the miss is issued) bring the block in. Returns
    /// the absolute completion cycle and whether the access hit.
    ///
    /// Structural hazards modeled:
    /// * each bank serves one access per cycle (port occupancy),
    /// * a limited number of primary MSHRs per bank; when exhausted the
    ///   access is delayed until the earliest outstanding fill completes,
    /// * a limited number of secondary misses may merge into an
    ///   outstanding primary miss; beyond that the access is serialized
    ///   after the fill.
    pub fn access(&mut self, addr: u64, write: bool, now: u64, fill_latency: u64) -> Access {
        self.use_counter += 1;
        let use_stamp = self.use_counter;
        let block = self.block_of(addr);
        let bank_idx = self.bank_of(block);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let assoc = self.params.assoc as usize;
        let base = (set * self.params.assoc as u64) as usize;

        // Bank port: one access per cycle.
        let start = now.max(self.banks[bank_idx].port_free_at);
        self.banks[bank_idx].port_free_at = start + 1;
        if start > now {
            self.stats.bank_conflict_cycles += start - now;
        }

        self.stats.accesses += 1;
        if write {
            self.stats.writes += 1;
        }

        // An outstanding fill for this block makes the access a secondary
        // miss even though the tag is already installed: the data is still
        // in flight.
        let bank = &mut self.banks[bank_idx];
        bank.mshrs.retain(|m| m.fill_at > start);
        if let Some(m) = bank.mshrs.iter_mut().find(|m| m.block == block) {
            self.stats.misses += 1;
            let complete_at = if m.secondaries_used < self.params.secondary_per_primary {
                m.secondaries_used += 1;
                self.stats.secondary_merges += 1;
                m.fill_at
            } else {
                // No secondary slot: serialize after the fill.
                self.stats.mshr_stall_cycles += m.fill_at.saturating_sub(start);
                m.fill_at + 1
            };
            let lines = &mut self.lines[bank_idx];
            if let Some(way) =
                (0..assoc).find(|&w| lines[base + w].valid && lines[base + w].tag == tag)
            {
                lines[base + way].last_use = use_stamp;
            }
            return Access {
                complete_at,
                hit: false,
            };
        }

        // Tag lookup.
        let lines = &mut self.lines[bank_idx];
        if let Some(way) = (0..assoc).find(|&w| lines[base + w].valid && lines[base + w].tag == tag)
        {
            lines[base + way].last_use = use_stamp;
            return Access {
                complete_at: start + self.params.hit_latency,
                hit: true,
            };
        }

        // Miss path: MSHR bookkeeping.
        self.stats.misses += 1;
        let bank = &mut self.banks[bank_idx];

        let complete_at = if (bank.mshrs.len() as u32) < self.params.primary_mshrs_per_bank {
            let fill_at = start + self.params.hit_latency + fill_latency;
            bank.mshrs.push(Mshr {
                block,
                fill_at,
                secondaries_used: 0,
            });
            fill_at
        } else {
            // All primary MSHRs busy: wait for the earliest fill, then issue.
            let earliest = bank
                .mshrs
                .iter()
                .map(|m| m.fill_at)
                .min()
                .expect("mshrs non-empty");
            self.stats.mshr_stall_cycles += earliest.saturating_sub(start);
            let fill_at = earliest + self.params.hit_latency + fill_latency;
            bank.mshrs.push(Mshr {
                block,
                fill_at,
                secondaries_used: 0,
            });
            fill_at
        };

        // Fill: install the block, evicting per the replacement policy.
        let victim = (0..assoc)
            .min_by_key(|&w| {
                let l = &lines[base + w];
                if !l.valid {
                    0
                } else {
                    match self.params.replacement {
                        Replacement::Lru => l.last_use,
                        Replacement::Fifo => l.inserted,
                    }
                }
            })
            .expect("associativity >= 1");
        lines[base + victim] = Line {
            tag,
            valid: true,
            last_use: use_stamp,
            inserted: use_stamp,
        };

        Access {
            complete_at,
            hit: false,
        }
    }

    /// Resets timing state (ports, MSHRs) but keeps cache contents; used
    /// between measurement phases.
    pub fn reset_timing(&mut self) {
        for b in &mut self.banks {
            b.port_free_at = 0;
            b.mshrs.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheParams {
        CacheParams {
            name: "T",
            size_bytes: 1024, // 32 lines of 32B
            assoc: 2,
            banks: 2,
            block_bytes: 32,
            hit_latency: 2,
            primary_mshrs_per_bank: 2,
            secondary_per_primary: 1,
            replacement: Replacement::Lru,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(small());
        let a = c.access(0x1000, false, 0, 10);
        assert!(!a.hit);
        assert_eq!(a.complete_at, 12); // 2 (lookup) + 10 (fill)
        let b = c.access(0x1000, false, 20, 10);
        assert!(b.hit);
        assert_eq!(b.complete_at, 22);
    }

    #[test]
    fn same_block_different_words_hit() {
        let mut c = Cache::new(small());
        c.access(0x1000, false, 0, 10);
        assert!(c.access(0x101f, false, 20, 10).hit); // last byte of block
        assert!(!c.access(0x1020, false, 30, 10).hit); // next block
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = small();
        let mut c = Cache::new(p.clone());
        // Three blocks mapping to the same set of a 2-way cache.
        // Set stride per bank: banks * sets_per_bank * block = full bank span.
        let sets = p.sets_per_bank();
        let stride = p.banks as u64 * sets * p.block_bytes;
        let (a, b, d) = (0x1000, 0x1000 + stride, 0x1000 + 2 * stride);
        c.access(a, false, 0, 10);
        c.access(b, false, 100, 10);
        c.access(a, false, 200, 10); // touch a: b becomes LRU
        c.access(d, false, 300, 10); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn bank_port_serializes_same_cycle_accesses() {
        let mut c = Cache::new(small());
        c.access(0x1000, false, 0, 10);
        c.access(0x1000, false, 50, 10); // warm
        let x = c.access(0x1000, false, 100, 10);
        let y = c.access(0x1000, false, 100, 10); // same bank, same cycle
        assert_eq!(x.complete_at, 102);
        assert_eq!(y.complete_at, 103);
        assert!(c.stats().bank_conflict_cycles > 0);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut c = Cache::new(small());
        c.access(0x1000, false, 0, 10);
        c.access(0x1020, false, 0, 10); // next block -> other bank
        assert_eq!(c.stats().bank_conflict_cycles, 0);
    }

    #[test]
    fn secondary_miss_merges_into_primary() {
        let mut c = Cache::new(small());
        let a = c.access(0x1000, false, 0, 100);
        let b = c.access(0x1008, false, 1, 100); // same block, outstanding
        assert!(!b.hit);
        assert_eq!(b.complete_at, a.complete_at);
        assert_eq!(c.stats().secondary_merges, 1);
    }

    #[test]
    fn secondary_limit_serializes() {
        let mut c = Cache::new(small()); // 1 secondary per primary
        let a = c.access(0x1000, false, 0, 100);
        let _merge = c.access(0x1008, false, 1, 100);
        let over = c.access(0x1010, false, 2, 100); // same block, no slot left
        assert!(over.complete_at > a.complete_at);
    }

    #[test]
    fn primary_mshr_exhaustion_delays() {
        let p = small(); // 2 primary per bank
        let sets = p.sets_per_bank();
        let stride = p.banks as u64 * sets * p.block_bytes;
        let mut c = Cache::new(p);
        // Three distinct blocks in the same bank, all missing at once.
        let m1 = c.access(0x1000, false, 0, 100);
        let _m2 = c.access(0x1000 + stride, false, 0, 100);
        let m3 = c.access(0x1000 + 2 * stride, false, 0, 100);
        assert!(
            m3.complete_at > m1.complete_at + 100,
            "third miss must wait for an MSHR"
        );
        assert!(c.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn fifo_evicts_by_insertion_order() {
        let p = CacheParams {
            replacement: Replacement::Fifo,
            ..small()
        };
        let sets = p.sets_per_bank();
        let stride = p.banks as u64 * sets * p.block_bytes;
        let mut c = Cache::new(p);
        let (a, b, d) = (0x1000, 0x1000 + stride, 0x1000 + 2 * stride);
        c.access(a, false, 0, 10);
        c.access(b, false, 100, 10);
        c.access(a, false, 200, 10); // touching a must NOT save it under FIFO
        c.access(d, false, 300, 10); // evicts a (oldest insertion)
        assert!(!c.probe(a), "FIFO ignores recency");
        assert!(c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = Cache::new(small());
        c.access(0x1000, false, 0, 10);
        c.access(0x1000, true, 20, 10);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.writes, 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_timing_keeps_contents() {
        let mut c = Cache::new(small());
        c.access(0x1000, false, 0, 10);
        c.reset_timing();
        assert!(c.probe(0x1000));
        let a = c.access(0x1000, false, 0, 10);
        assert!(a.hit);
    }
}
