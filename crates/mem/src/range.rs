//! Overflow-safe byte-range arithmetic, shared by the store buffer, the
//! core's instruction window, and violation detection.
//!
//! Memory operations cover the half-open byte range `[addr, addr + size)`
//! with `size <= 8`. Computing `addr + size` directly wraps for addresses
//! within 8 bytes of `u64::MAX`, silently mis-classifying overlap: a
//! store at `u64::MAX - 1` would appear to overlap a load at address 0.
//! These helpers phrase the comparisons as subtractions that cannot
//! overflow, so they are exact over the full address space.

/// Whether `[a, a + a_size)` and `[b, b + b_size)` share at least one
/// byte. Zero-sized ranges never overlap anything.
///
/// # Examples
///
/// ```
/// use mds_mem::ranges_overlap;
///
/// assert!(ranges_overlap(100, 4, 102, 4));
/// assert!(!ranges_overlap(100, 4, 104, 4)); // adjacent, not overlapping
/// assert!(ranges_overlap(u64::MAX - 1, 2, u64::MAX, 1));
/// assert!(!ranges_overlap(u64::MAX - 1, 2, 0, 8)); // no wrap-around
/// ```
#[inline]
pub fn ranges_overlap(a: u64, a_size: u8, b: u64, b_size: u8) -> bool {
    if a_size == 0 || b_size == 0 {
        return false;
    }
    if a <= b {
        b - a < a_size as u64
    } else {
        a - b < b_size as u64
    }
}

/// Whether `[outer, outer + outer_size)` fully contains
/// `[inner, inner + inner_size)`. An empty inner range is never covered
/// (matching the forwarding semantics: a zero-byte load cannot hit).
///
/// # Examples
///
/// ```
/// use mds_mem::range_covers;
///
/// assert!(range_covers(0x100, 8, 0x104, 4));
/// assert!(!range_covers(0x100, 4, 0x102, 4)); // straddles the end
/// assert!(range_covers(u64::MAX - 7, 8, u64::MAX, 1));
/// ```
#[inline]
pub fn range_covers(outer: u64, outer_size: u8, inner: u64, inner_size: u8) -> bool {
    if inner_size == 0 || inner < outer {
        return false;
    }
    let off = inner - outer;
    off < outer_size as u64 && inner_size as u64 <= outer_size as u64 - off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_naive_math_away_from_the_boundary() {
        // Exhaustive cross-check against the naive `addr + size` formulas
        // in a region where they cannot wrap.
        let sizes = [0u8, 1, 2, 4, 8];
        for a in 0u64..24 {
            for b in 0u64..24 {
                for &s in &sizes {
                    for &t in &sizes {
                        let naive_overlap =
                            s != 0 && t != 0 && a < b + t as u64 && b < a + s as u64;
                        assert_eq!(ranges_overlap(a, s, b, t), naive_overlap, "{a} {s} {b} {t}");
                        let naive_cover = t != 0 && a <= b && b + t as u64 <= a + s as u64;
                        assert_eq!(range_covers(a, s, b, t), naive_cover, "{a} {s} {b} {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn no_wrap_at_the_top_of_the_address_space() {
        // The naive formula claims a store at MAX-1 overlaps address 0.
        assert!(!ranges_overlap(u64::MAX - 1, 8, 0, 8));
        assert!(!ranges_overlap(0, 8, u64::MAX - 1, 8));
        assert!(ranges_overlap(u64::MAX - 1, 8, u64::MAX, 1));
        assert!(!range_covers(u64::MAX - 1, 8, 0, 1));
        assert!(range_covers(u64::MAX - 7, 8, u64::MAX - 3, 4));
        assert!(range_covers(u64::MAX - 3, 8, u64::MAX - 3, 8)); // identical ranges
    }

    #[test]
    fn overlap_is_symmetric() {
        for (a, s, b, t) in [
            (0u64, 4u8, 3u64, 4u8),
            (u64::MAX - 2, 4, u64::MAX - 5, 4),
            (100, 1, 100, 8),
        ] {
            assert_eq!(ranges_overlap(a, s, b, t), ranges_overlap(b, t, a, s));
        }
    }

    #[test]
    fn zero_sizes_never_match() {
        assert!(!ranges_overlap(5, 0, 5, 4));
        assert!(!ranges_overlap(5, 4, 5, 0));
        assert!(!range_covers(5, 8, 6, 0));
    }
}
