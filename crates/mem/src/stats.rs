//! Memory-system statistics.

use mds_obs::{Metric, MetricSource};

/// Counters accumulated by one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Write accesses.
    pub writes: u64,
    /// Misses merged into an outstanding MSHR as secondaries.
    pub secondary_merges: u64,
    /// Cycles lost waiting for a bank port.
    pub bank_conflict_cycles: u64,
    /// Cycles lost waiting for an MSHR (primary exhausted or secondary
    /// slots full).
    pub mshr_stall_cycles: u64,
}

impl CacheStats {
    /// Miss rate over all accesses (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate over all accesses (0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.miss_rate()
        }
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.writes += other.writes;
        self.secondary_merges += other.secondary_merges;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.mshr_stall_cycles += other.mshr_stall_cycles;
    }
}

impl MetricSource for CacheStats {
    fn visit(&self, out: &mut dyn FnMut(&str, Metric<'_>)) {
        out("accesses", Metric::Counter(self.accesses));
        out("misses", Metric::Counter(self.misses));
        out("writes", Metric::Counter(self.writes));
        out("secondary_merges", Metric::Counter(self.secondary_merges));
        out(
            "bank_conflict_cycles",
            Metric::Counter(self.bank_conflict_cycles),
        );
        out("mshr_stall_cycles", Metric::Counter(self.mshr_stall_cycles));
        out("miss_rate", Metric::Gauge(self.miss_rate()));
    }
}

/// Statistics for the composed hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Accesses that went all the way to main memory.
    pub main_accesses: u64,
    /// Next-line prefetches issued into the L1 data cache.
    pub prefetches: u64,
}

impl MemStats {
    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &MemStats) {
        self.l1i.merge(&other.l1i);
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        self.main_accesses += other.main_accesses;
        self.prefetches += other.prefetches;
    }
}

impl MetricSource for MemStats {
    fn visit(&self, out: &mut dyn FnMut(&str, Metric<'_>)) {
        for (prefix, level) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            level.visit(&mut |name, metric| out(&format!("{prefix}.{name}"), metric));
        }
        out("main_accesses", Metric::Counter(self.main_accesses));
        out("prefetches", Metric::Counter(self.prefetches));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_of_empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let s = CacheStats {
            accesses: 10,
            misses: 3,
            ..CacheStats::default()
        };
        assert!((s.miss_rate() + s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_every_level() {
        let mut a = MemStats::default();
        a.l1d.accesses = 10;
        a.main_accesses = 1;
        let mut b = MemStats::default();
        b.l1d.accesses = 5;
        b.l1d.misses = 2;
        b.prefetches = 3;
        a.merge(&b);
        assert_eq!(a.l1d.accesses, 15);
        assert_eq!(a.l1d.misses, 2);
        assert_eq!(a.main_accesses, 1);
        assert_eq!(a.prefetches, 3);
    }

    #[test]
    fn visit_namespaces_cache_levels() {
        let mut s = MemStats::default();
        s.l2.misses = 4;
        let mut names = Vec::new();
        s.visit(&mut |name, _| names.push(name.to_string()));
        assert!(names.contains(&"l1i.accesses".to_string()));
        assert!(names.contains(&"l2.misses".to_string()));
        assert!(names.contains(&"main_accesses".to_string()));
        let mut got = 0;
        s.visit(&mut |name, m| {
            if name == "l2.misses" {
                if let Metric::Counter(n) = m {
                    got = n;
                }
            }
        });
        assert_eq!(got, 4);
    }
}
