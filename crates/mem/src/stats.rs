//! Memory-system statistics.

/// Counters accumulated by one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Write accesses.
    pub writes: u64,
    /// Misses merged into an outstanding MSHR as secondaries.
    pub secondary_merges: u64,
    /// Cycles lost waiting for a bank port.
    pub bank_conflict_cycles: u64,
    /// Cycles lost waiting for an MSHR (primary exhausted or secondary
    /// slots full).
    pub mshr_stall_cycles: u64,
}

impl CacheStats {
    /// Miss rate over all accesses (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate over all accesses (0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.miss_rate()
        }
    }
}

/// Statistics for the composed hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Accesses that went all the way to main memory.
    pub main_accesses: u64,
    /// Next-line prefetches issued into the L1 data cache.
    pub prefetches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_of_empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let s = CacheStats {
            accesses: 10,
            misses: 3,
            ..CacheStats::default()
        };
        assert!((s.miss_rate() + s.hit_rate() - 1.0).abs() < 1e-12);
    }
}
