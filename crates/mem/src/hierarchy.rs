//! The composed L1 / L2 / main-memory hierarchy.

use crate::cache::{Access, Cache};
use crate::config::MemConfig;
use crate::stats::MemStats;

/// Which first-level cache an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch through the L1 I-cache.
    Fetch,
    /// Data read through the L1 D-cache.
    Read,
    /// Data write through the L1 D-cache.
    Write,
}

/// The full memory system: split L1 caches, unified L2, main memory.
///
/// All methods are completion-time based: an access at cycle `now` returns
/// the absolute cycle its data is available, accounting for hits, misses,
/// bank conflicts and MSHR limits at each level.
///
/// # Examples
///
/// ```
/// use mds_mem::{AccessKind, MemConfig, MemSystem};
///
/// let mut m = MemSystem::new(MemConfig::paper());
/// let cold = m.access(AccessKind::Read, 0x1000, 0);
/// let warm = m.access(AccessKind::Read, 0x1000, cold + 1);
/// assert!(cold > warm - (cold + 1)); // the second access is a 2-cycle hit
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    main_accesses: u64,
    prefetches: u64,
}

impl MemSystem {
    /// Creates a cold memory system.
    pub fn new(config: MemConfig) -> MemSystem {
        MemSystem {
            l1i: Cache::new(config.l1i.clone()),
            l1d: Cache::new(config.l1d.clone()),
            l2: Cache::new(config.l2.clone()),
            config,
            main_accesses: 0,
            prefetches: 0,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Latency for the L2 to respond to an L1 miss, issued at `now`,
    /// measured from issue to data return.
    fn l2_fill_latency(&mut self, addr: u64, now: u64) -> u64 {
        let l1_block = self.config.l1d.block_bytes.max(self.config.l1i.block_bytes);
        let main_latency = self.config.main.latency(self.config.l2.block_bytes);
        let l2_access: Access = self.l2.access(addr, false, now, main_latency);
        if !l2_access.hit {
            self.main_accesses += 1;
        }
        // Transfer the L1 block from L2 to L1.
        let words = l1_block.div_ceil(4);
        let transfer = words.div_ceil(4) * self.config.l2_transfer_per_four_words;
        (l2_access.complete_at + transfer).saturating_sub(now)
    }

    /// Performs an access at cycle `now`, returning the absolute cycle the
    /// data is available (for writes: the cycle the write is accepted).
    pub fn access(&mut self, kind: AccessKind, addr: u64, now: u64) -> u64 {
        // Compute the prospective L2 fill latency first (only charged on a
        // miss). We must know it before calling `Cache::access`, which
        // resolves the whole access immediately; probing tells us whether
        // the miss path will be taken.
        let (cache, write) = match kind {
            AccessKind::Fetch => (&self.l1i, false),
            AccessKind::Read => (&self.l1d, false),
            AccessKind::Write => (&self.l1d, true),
        };
        let fill = if cache.probe(addr) {
            0
        } else {
            self.l2_fill_latency(addr, now)
        };
        let was_data_miss = fill > 0 && !matches!(kind, AccessKind::Fetch);
        let cache = match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Read | AccessKind::Write => &mut self.l1d,
        };
        let done = cache.access(addr, write, now, fill).complete_at;
        // Next-line prefetch: a demand miss in the D-cache also brings in
        // the following block, off the demand path.
        if was_data_miss && self.config.l1d_next_line_prefetch {
            let next = (addr / self.config.l1d.block_bytes + 1) * self.config.l1d.block_bytes;
            if !self.l1d.probe(next) {
                self.prefetches += 1;
                let fill = self.l2_fill_latency(next, now);
                self.l1d.access(next, false, now, fill);
            }
        }
        done
    }

    /// Accumulated statistics for all levels.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            main_accesses: self.main_accesses,
            prefetches: self.prefetches,
        }
    }

    /// Resets timing state (ports, MSHRs) at every level while keeping
    /// cache contents warm.
    pub fn reset_timing(&mut self) {
        self.l1i.reset_timing();
        self.l1d.reset_timing();
        self.l2.reset_timing();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_reaches_main_memory() {
        let mut m = MemSystem::new(MemConfig::paper());
        let done = m.access(AccessKind::Read, 0x4_0000, 0);
        // Must include L1 lookup (2) + L2 lookup (8) + main (34+)
        assert!(
            done >= 44,
            "cold access completed unrealistically fast: {done}"
        );
        assert_eq!(m.stats().main_accesses, 1);
        assert_eq!(m.stats().l1d.misses, 1);
        assert_eq!(m.stats().l2.misses, 1);
    }

    #[test]
    fn warm_read_is_an_l1_hit() {
        let mut m = MemSystem::new(MemConfig::paper());
        let cold = m.access(AccessKind::Read, 0x4_0000, 0);
        let warm = m.access(AccessKind::Read, 0x4_0000, cold + 10);
        assert_eq!(warm - (cold + 10), 2); // L1D hit latency
    }

    #[test]
    fn l2_hit_after_l1_eviction_distance() {
        let mut m = MemSystem::new(MemConfig::paper());
        // Two L1 blocks in the same 128B L2 block: second L1 miss hits L2.
        let t0 = m.access(AccessKind::Read, 0x8000, 0);
        let t1 = m.access(AccessKind::Read, 0x8020, t0 + 1);
        assert_eq!(m.stats().main_accesses, 1, "second block should hit in L2");
        assert!(
            t1 - (t0 + 1) < t0,
            "L2 hit must be faster than main-memory access"
        );
    }

    #[test]
    fn icache_and_dcache_are_split() {
        let mut m = MemSystem::new(MemConfig::paper());
        m.access(AccessKind::Fetch, 0x40_0000, 0);
        m.access(AccessKind::Read, 0x10_0000, 0);
        assert_eq!(m.stats().l1i.accesses, 1);
        assert_eq!(m.stats().l1d.accesses, 1);
    }

    #[test]
    fn writes_count_in_dcache() {
        let mut m = MemSystem::new(MemConfig::paper());
        m.access(AccessKind::Write, 0x1000, 0);
        assert_eq!(m.stats().l1d.writes, 1);
    }

    #[test]
    fn ideal_config_single_cycle_hits() {
        let mut m = MemSystem::new(MemConfig::ideal());
        let t0 = m.access(AccessKind::Read, 0x1234, 0);
        let t1 = m.access(AccessKind::Read, 0x1234, t0);
        assert_eq!(t1 - t0, 1);
    }

    #[test]
    fn next_line_prefetch_warms_the_following_block() {
        let mut cfg = MemConfig::paper();
        cfg.l1d_next_line_prefetch = true;
        let mut m = MemSystem::new(cfg);
        let t0 = m.access(AccessKind::Read, 0x8000, 0); // miss, prefetch 0x8020
        assert!(m.stats().prefetches >= 1);
        let t1 = m.access(AccessKind::Read, 0x8020, t0 + 60);
        assert_eq!(t1 - (t0 + 60), 2, "prefetched block must hit in L1");
    }

    #[test]
    fn prefetch_off_by_default() {
        let mut m = MemSystem::new(MemConfig::paper());
        m.access(AccessKind::Read, 0x8000, 0);
        assert_eq!(m.stats().prefetches, 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = MemSystem::new(MemConfig::paper());
            let mut t = 0;
            let mut sum = 0u64;
            for i in 0..1000u64 {
                let addr = (i * 4093) % (1 << 20);
                t = m.access(AccessKind::Read, addr, t);
                sum = sum.wrapping_add(t);
            }
            sum
        };
        assert_eq!(run(), run());
    }
}
