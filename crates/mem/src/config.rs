//! Memory-system configuration, defaulting to Table 2 of the paper.

/// Replacement policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least-recently-used (the paper's Table 2 choice).
    #[default]
    Lru,
    /// First-in-first-out (insertion order; cheaper hardware).
    Fifo,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Human-readable name used in statistics output.
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity (ways per set).
    pub assoc: u32,
    /// Number of independently-ported banks (block-interleaved).
    pub banks: u32,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Access latency on a hit, in cycles.
    pub hit_latency: u64,
    /// Lockup-free: primary (outstanding-block) misses per bank.
    pub primary_mshrs_per_bank: u32,
    /// Secondary misses that may merge into each primary miss.
    pub secondary_per_primary: u32,
    /// Replacement policy (Table 2: LRU).
    pub replacement: Replacement,
}

impl CacheParams {
    /// The paper's 64 KiB instruction cache (Table 2): 2-way, 8 banks,
    /// 32-byte blocks, 2-cycle hit, 2 primary misses per bank with 1
    /// secondary each.
    pub fn paper_l1i() -> CacheParams {
        CacheParams {
            name: "L1I",
            size_bytes: 64 * 1024,
            assoc: 2,
            banks: 8,
            block_bytes: 32,
            hit_latency: 2,
            primary_mshrs_per_bank: 2,
            secondary_per_primary: 1,
            replacement: Replacement::Lru,
        }
    }

    /// The paper's 32 KiB data cache (Table 2): 2-way, 4 banks, 32-byte
    /// blocks, 2-cycle hit, 8 primary misses per bank with 8 secondaries.
    pub fn paper_l1d() -> CacheParams {
        CacheParams {
            name: "L1D",
            size_bytes: 32 * 1024,
            assoc: 2,
            banks: 4,
            block_bytes: 32,
            hit_latency: 2,
            primary_mshrs_per_bank: 8,
            secondary_per_primary: 8,
            replacement: Replacement::Lru,
        }
    }

    /// The paper's 4 MiB unified L2 (Table 2): 2-way, 4 banks, 128-byte
    /// blocks, 8-cycle hit plus one cycle per 4-word transfer, 4 primary
    /// misses per bank with 3 secondaries.
    pub fn paper_l2() -> CacheParams {
        CacheParams {
            name: "L2",
            size_bytes: 4 * 1024 * 1024,
            assoc: 2,
            banks: 4,
            block_bytes: 128,
            hit_latency: 8,
            primary_mshrs_per_bank: 4,
            secondary_per_primary: 3,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets per bank.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the geometry does not divide evenly.
    pub fn sets_per_bank(&self) -> u64 {
        let lines = self.size_bytes / self.block_bytes;
        let sets = lines / self.assoc as u64;
        debug_assert_eq!(
            sets % self.banks as u64,
            0,
            "{}: sets not divisible by banks",
            self.name
        );
        sets / self.banks as u64
    }
}

/// Main-memory timing: `base + ceil(words/4) * per_four_words` cycles,
/// where `words` is the number of 4-byte words transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MainMemoryParams {
    /// Fixed access latency in cycles.
    pub base_latency: u64,
    /// Additional cycles per 4-word transfer unit.
    pub per_four_words: u64,
}

impl MainMemoryParams {
    /// The paper's main memory (Table 2): 34 cycles plus 2 cycles per
    /// 4-word transfer.
    pub fn paper() -> MainMemoryParams {
        MainMemoryParams {
            base_latency: 34,
            per_four_words: 2,
        }
    }

    /// Latency to transfer `bytes` from main memory.
    pub fn latency(&self, bytes: u64) -> u64 {
        let words = bytes.div_ceil(4);
        self.base_latency + words.div_ceil(4) * self.per_four_words
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2 cache.
    pub l2: CacheParams,
    /// Main memory timing.
    pub main: MainMemoryParams,
    /// Extra cycles per 4-word transfer from L2 to L1.
    pub l2_transfer_per_four_words: u64,
    /// Next-line prefetch into the L1 data cache on a demand miss
    /// (extension beyond the paper's Table 2; off by default).
    pub l1d_next_line_prefetch: bool,
}

impl MemConfig {
    /// The paper's default memory system (Table 2).
    pub fn paper() -> MemConfig {
        MemConfig {
            l1i: CacheParams::paper_l1i(),
            l1d: CacheParams::paper_l1d(),
            l2: CacheParams::paper_l2(),
            main: MainMemoryParams::paper(),
            l2_transfer_per_four_words: 1,
            l1d_next_line_prefetch: false,
        }
    }

    /// A memory system where every access hits in one cycle; used to
    /// isolate core-scheduling effects in tests.
    pub fn ideal() -> MemConfig {
        let fast = |name| CacheParams {
            name,
            size_bytes: 1 << 30,
            assoc: 4,
            banks: 1,
            block_bytes: 32,
            hit_latency: 1,
            primary_mshrs_per_bank: 64,
            secondary_per_primary: 64,
            replacement: Replacement::Lru,
        };
        MemConfig {
            l1i: fast("L1I"),
            l1d: fast("L1D"),
            l2: CacheParams {
                name: "L2",
                block_bytes: 128,
                ..fast("L2")
            },
            main: MainMemoryParams {
                base_latency: 1,
                per_four_words: 0,
            },
            l2_transfer_per_four_words: 0,
            l1d_next_line_prefetch: false,
        }
    }
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1d_geometry_matches_table2() {
        let p = CacheParams::paper_l1d();
        // 32K / 32B = 1024 lines, 2-way -> 512 sets, 4 banks -> 128... the
        // paper says 256 sets per bank for 32K; its numbers imply direct
        // counting of sets across ways. Our geometry: capacity is what
        // matters for miss behaviour.
        assert_eq!(
            p.sets_per_bank() * p.banks as u64 * p.assoc as u64 * p.block_bytes,
            p.size_bytes
        );
    }

    #[test]
    fn paper_l1i_geometry() {
        let p = CacheParams::paper_l1i();
        assert_eq!(p.sets_per_bank(), 128);
        assert_eq!(
            p.sets_per_bank() * p.banks as u64 * p.assoc as u64 * p.block_bytes,
            p.size_bytes
        );
    }

    #[test]
    fn main_memory_latency_scales_with_transfer() {
        let m = MainMemoryParams::paper();
        assert_eq!(m.latency(16), 36); // 4 words = one transfer unit
        assert_eq!(m.latency(32), 38); // 8 words = two transfer units
        assert_eq!(m.latency(128), 50); // 32 words = eight transfer units
    }

    #[test]
    fn ideal_config_is_single_cycle() {
        let c = MemConfig::ideal();
        assert_eq!(c.l1d.hit_latency, 1);
        assert_eq!(c.main.latency(128), 1);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(MemConfig::default(), MemConfig::paper());
    }
}
