//! Kernel × policy grid: each named kernel has a known dependence
//! structure, so each policy's behaviour on it is predictable.

use mds::core::{CoreConfig, Policy, Simulator, WindowModel};
use mds::isa::{Interpreter, Program, Trace};
use mds::workloads::kernels;

fn trace(p: Program) -> Trace {
    Interpreter::new(p).run(2_000_000).expect("kernel runs")
}

fn run(t: &Trace, policy: Policy) -> mds::core::SimResult {
    Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(t)
}

#[test]
fn figure7_naive_missspeculates_sync_learns() {
    let t = trace(kernels::figure7_recurrence(500, true).unwrap());
    let nav = run(&t, Policy::NasNaive);
    let sync = run(&t, Policy::NasSync);
    let oracle = run(&t, Policy::NasOracle);
    assert!(
        nav.stats.misspeculations > 100,
        "every iteration re-violates: {}",
        nav.stats.misspeculations
    );
    assert!(
        sync.stats.misspeculations <= 3,
        "MDPT learns the single pair"
    );
    assert!(
        sync.ipc() >= oracle.ipc() * 0.95,
        "one stable pair: sync ≈ oracle"
    );
}

#[test]
fn streaming_sum_makes_all_policies_equal() {
    // No stores at all: every policy gives identical cycle counts.
    let t = trace(kernels::streaming_sum(3000).unwrap());
    let baseline = run(&t, Policy::NasNo);
    for policy in Policy::ALL {
        let r = run(&t, policy);
        assert_eq!(r.stats.misspeculations, 0, "{policy}");
        assert!(
            (r.stats.cycles as f64 - baseline.stats.cycles as f64).abs()
                <= baseline.stats.cycles as f64 * 0.02,
            "{policy}: {} vs {} cycles — without stores the policies must coincide",
            r.stats.cycles,
            baseline.stats.cycles
        );
    }
}

#[test]
fn pointer_chase_is_load_latency_bound() {
    let t = trace(kernels::pointer_chase(256, 2000).unwrap());
    let no = run(&t, Policy::NasNo);
    let oracle = run(&t, Policy::NasOracle);
    // The chase is serial through memory: exploiting load/store
    // parallelism cannot speed it up much.
    assert!(
        oracle.ipc() <= no.ipc() * 1.10,
        "a pure pointer chase has no load/store parallelism to exploit: {:.2} vs {:.2}",
        oracle.ipc(),
        no.ipc()
    );
}

#[test]
fn histogram_collisions_missspeculate_at_low_rate() {
    let t = trace(kernels::histogram(3000, 64).unwrap());
    let nav = run(&t, Policy::NasNaive);
    let rate = nav.stats.misspeculation_rate();
    assert!(
        rate > 0.0005 && rate < 0.2,
        "64-bin histogram collides occasionally, got rate {rate}"
    );
    let sync = run(&t, Policy::NasSync);
    assert!(sync.stats.misspeculation_rate() <= rate);
}

#[test]
fn call_storm_forwards_through_the_store_buffer() {
    let t = trace(kernels::call_storm(400).unwrap());
    let nav = run(&t, Policy::NasNaive);
    // Spill data is ready at entry, so stores execute promptly and the
    // reloads mostly forward; naive speculation stays nearly clean.
    assert!(
        nav.stats.misspeculation_rate() < 0.05,
        "prompt spills should rarely violate: {}",
        nav.stats.misspeculation_rate()
    );
    assert!(nav.stats.forwarded_loads > 0, "some reloads must forward");
}

#[test]
fn unrolled_recurrence_exposes_split_window_failure() {
    let t = trace(kernels::unrolled_recurrence(600).unwrap());
    let cont = Simulator::new(CoreConfig::paper_128().with_policy(Policy::AsNaive)).run(&t);
    let split = Simulator::new(
        CoreConfig::paper_128()
            .with_policy(Policy::AsNaive)
            .with_window_model(WindowModel::Split {
                units: 4,
                task_size: 8,
            }),
    )
    .run(&t);
    assert!(split.stats.misspeculations > cont.stats.misspeculations.max(10) * 4);
}

#[test]
fn oracle_never_squashes_on_any_kernel() {
    for p in [
        kernels::figure7_recurrence(100, true).unwrap(),
        kernels::unrolled_recurrence(100).unwrap(),
        kernels::histogram(500, 64).unwrap(),
        kernels::call_storm(100).unwrap(),
    ] {
        let t = trace(p);
        let r = run(&t, Policy::NasOracle);
        assert_eq!(r.stats.misspeculations, 0);
        assert_eq!(r.stats.committed, t.len() as u64);
    }
}
