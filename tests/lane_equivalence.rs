//! Differential equivalence of config-lane batched simulation.
//!
//! [`Simulator::run_lanes`] advances many configurations over one
//! shared trace traversal in chunked lockstep; each lane must produce
//! [`SimStats`] *identical* — same cycle count, same CPI-stack
//! partition, same histograms, same memory and front-end counters, and
//! the same fast-forward skip count — to a solo
//! [`Simulator::run_with_artifacts`] call under the same configuration,
//! because lanes share nothing mutable and each lane's cycle loop is
//! the very loop a solo run executes. These tests compare the full
//! `Debug` rendering so any new statistic is automatically covered.
//!
//! Coverage mirrors `event_equivalence.rs`: all nine policies,
//! continuous and split windows, address-scheduler latencies 0–2, both
//! recovery models — laned together in heterogeneous batches at several
//! widths — plus random-program batches via proptest.

use mds::core::{CoreConfig, Policy, Recovery, Simulator, TraceArtifacts, WindowModel};
use mds::isa::{Asm, Interpreter, Reg, Trace};
use mds::workloads::{Benchmark, SuiteParams};
use proptest::prelude::*;

const ALL_NINE: [Policy; 9] = [
    Policy::NasNo,
    Policy::NasNaive,
    Policy::NasSelective,
    Policy::NasStoreBarrier,
    Policy::NasSync,
    Policy::NasStoreSets,
    Policy::NasOracle,
    Policy::AsNo,
    Policy::AsNaive,
];

/// Runs `configs` laned together in batches of `width` and solo, and
/// checks every pair of results is identical in every field.
fn assert_lanes_equivalent(trace: &Trace, configs: &[CoreConfig], width: usize, what: &str) {
    let artifacts = TraceArtifacts::build(trace);
    let solo: Vec<_> = configs
        .iter()
        .map(|cfg| Simulator::new(cfg.clone()).run_with_artifacts(trace, &artifacts))
        .collect();
    let mut laned = Vec::new();
    for chunk in configs.chunks(width.max(1)) {
        laned.extend(Simulator::run_lanes(trace, &artifacts, chunk));
    }
    assert_eq!(laned.len(), solo.len());
    for ((cfg, lane), solo) in configs.iter().zip(&laned).zip(&solo) {
        assert_eq!(
            format!("{:?}", lane.stats),
            format!("{:?}", solo.stats),
            "{what} width={width}: laned stats diverged from solo under {}",
            cfg.policy.paper_name()
        );
        assert_eq!(
            lane.skipped_cycles,
            solo.skipped_cycles,
            "{what} width={width}: fast-forward skips diverged under {}",
            cfg.policy.paper_name()
        );
        assert_eq!(lane.policy_name, solo.policy_name);
    }
}

/// The full paper matrix: every policy under continuous and split
/// windows, address-scheduler latencies 0–2, and both recovery models.
fn full_matrix() -> Vec<CoreConfig> {
    let mut configs = Vec::new();
    for policy in ALL_NINE {
        for lat in 0..=2 {
            configs.push(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_addr_sched_latency(lat),
            );
        }
        for recovery in [Recovery::Squash, Recovery::SelectiveReissue] {
            configs.push(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_recovery(recovery),
            );
        }
        configs.push(
            CoreConfig::paper_128()
                .with_policy(policy)
                .with_window_model(WindowModel::Split {
                    units: 4,
                    task_size: 16,
                })
                .with_addr_sched_latency(2),
        );
    }
    configs
}

/// Deterministic sweep on a real workload: the full matrix, batched at
/// the default-like width 4. Heterogeneous batches mix policies,
/// window models, latencies, and recoveries in one lockstep pass.
#[test]
fn lane_equivalence_sweep_on_workload_trace() {
    let trace = Benchmark::Li.trace(&SuiteParams::tiny()).expect("trace");
    assert_lanes_equivalent(&trace, &full_matrix(), 4, "workload sweep");
}

/// Width must be a pure throughput knob: 1 (solo), an uneven 5 (the
/// last batch is a remainder), and one batch holding the entire matrix
/// all produce identical results.
#[test]
fn lane_width_does_not_affect_results() {
    let trace = Benchmark::Li.trace(&SuiteParams::tiny()).expect("trace");
    // A policy-diverse subset keeps the width sweep quick while still
    // mixing speculation, synchronization, and both schedulers.
    let configs: Vec<CoreConfig> = [
        Policy::NasNaive,
        Policy::NasSync,
        Policy::NasOracle,
        Policy::AsNo,
        Policy::AsNaive,
        Policy::NasStoreSets,
        Policy::NasSelective,
    ]
    .iter()
    .map(|&p| CoreConfig::paper_128().with_policy(p))
    .collect();
    for width in [1, 5, configs.len()] {
        assert_lanes_equivalent(&trace, &configs, width, "width sweep");
    }
}

/// The same random-loop generator the scheduler- and event-equivalence
/// proptests use: loads, stores, ALU ops, and a loop-carried memory
/// recurrence.
fn random_loop_trace(iters: u64, body: &[(u8, u8)]) -> Trace {
    let mut a = Asm::new();
    let arr = a.alloc_data(4096 + 64, 64);
    let cell = a.alloc_data(8, 8);
    let (cnt, base, cbase) = (Reg::int(1), Reg::int(2), Reg::int(3));
    a.li(cnt, iters as i64);
    a.li(base, arr as i64);
    a.li(cbase, cell as i64);
    let top = a.label();
    a.bind(top);
    for &(kind, operand) in body {
        let r = Reg::int(4 + (operand % 6));
        let off = (operand as i64 % 64) * 4;
        match kind % 5 {
            0 => a.lw(r, base, off),
            1 => a.sw(r, base, off),
            2 => a.addi(r, r, operand as i64),
            3 => {
                a.lw(r, cbase, 0);
                a.addi(r, r, 1);
                a.sw(r, cbase, 0);
            }
            _ => {
                let r2 = Reg::int(4 + ((operand / 7) % 6));
                a.add(r, r, r2);
            }
        }
    }
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    Interpreter::new(a.assemble().unwrap())
        .run(2_000_000)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random programs, all nine policies laned together at a random
    /// width.
    #[test]
    fn lanes_match_solo_on_random_programs(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..14),
        iters in 1u64..18,
        width in 1usize..10,
    ) {
        let trace = random_loop_trace(iters, &body);
        let configs: Vec<CoreConfig> = ALL_NINE
            .iter()
            .map(|&p| CoreConfig::paper_128().with_policy(p))
            .collect();
        assert_lanes_equivalent(&trace, &configs, width, "random program");
    }

    /// Random programs under split windows, nonzero address-scheduler
    /// latency, and selective reissue — the states hardest to pause and
    /// resume mid-trace.
    #[test]
    fn lanes_match_solo_on_split_window_and_selective_reissue(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..10),
        iters in 1u64..14,
        units in 2u32..5,
    ) {
        let trace = random_loop_trace(iters, &body);
        let configs: Vec<CoreConfig> = vec![
            CoreConfig::paper_128()
                .with_policy(Policy::NasNaive)
                .with_window_model(WindowModel::Split { units, task_size: 16 })
                .with_addr_sched_latency(1),
            CoreConfig::paper_128()
                .with_policy(Policy::NasSelective)
                .with_recovery(Recovery::SelectiveReissue),
            CoreConfig::paper_128()
                .with_policy(Policy::AsNaive)
                .with_window_model(WindowModel::Split { units, task_size: 16 }),
            CoreConfig::paper_128()
                .with_policy(Policy::NasSync)
                .with_recovery(Recovery::SelectiveReissue)
                .with_addr_sched_latency(2),
        ];
        assert_lanes_equivalent(&trace, &configs, 4, "split/selective");
    }
}

/// Lanes must actually fast-forward (each on its own horizon) for the
/// equivalence above to prove anything about skip interleaving.
#[test]
fn lanes_fast_forward_independently() {
    let trace = Benchmark::Li.trace(&SuiteParams::tiny()).expect("trace");
    let configs: Vec<CoreConfig> = ALL_NINE
        .iter()
        .map(|&p| CoreConfig::paper_128().with_window_size(16).with_policy(p))
        .collect();
    let artifacts = TraceArtifacts::build(&trace);
    let laned = Simulator::run_lanes(&trace, &artifacts, &configs);
    let skipped: Vec<u64> = laned.iter().map(|r| r.skipped_cycles).collect();
    assert!(
        skipped.iter().sum::<u64>() > 0,
        "expected fast-forward activity inside lanes, got {skipped:?}"
    );
    assert_lanes_equivalent(&trace, &configs, configs.len(), "small-window");
}
