//! Property-based tests of the memory-system substrate: store-buffer
//! forwarding against a naive model, and cache sanity invariants.

use mds::mem::{AccessKind, CacheParams, Forward, MemConfig, MemSystem, StoreBuffer};
use proptest::prelude::*;

/// Naive forwarding model: scan stores youngest-first; a full cover
/// hits, any overlap without cover is partial.
fn model_forward(
    stores: &[(u64, u64, u8, u64)], // (seq, addr, size, value)
    load_seq: u64,
    addr: u64,
    size: u8,
) -> Forward {
    let mut candidates: Vec<&(u64, u64, u8, u64)> =
        stores.iter().filter(|&&(seq, ..)| seq < load_seq).collect();
    candidates.sort_by_key(|&&(seq, ..)| std::cmp::Reverse(seq));
    for &&(seq, saddr, ssize, value) in &candidates {
        let covers = saddr <= addr && addr + size as u64 <= saddr + ssize as u64;
        let overlaps = saddr < addr + size as u64 && addr < saddr + ssize as u64;
        if covers {
            let shift = 8 * (addr - saddr);
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * size)) - 1
            };
            return Forward::Hit {
                value: (value >> shift) & mask,
                store_seq: seq,
            };
        }
        if overlaps {
            return Forward::Partial;
        }
    }
    Forward::Miss
}

fn size_strategy() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Store-buffer forwarding agrees with the naive youngest-older-store
    /// model for arbitrary store sets and load probes.
    #[test]
    fn store_buffer_matches_model(
        stores in proptest::collection::vec(
            (0u64..128, size_strategy(), any::<u64>()),
            0..20
        ),
        probe_addr in 0u64..144,
        probe_size in size_strategy(),
        load_seq in 0u64..32,
    ) {
        let mut sb = StoreBuffer::new(64);
        let mut model: Vec<(u64, u64, u8, u64)> = Vec::new();
        for (i, &(addr, size, value)) in stores.iter().enumerate() {
            let seq = i as u64;
            let mask = if size == 8 { u64::MAX } else { (1u64 << (8 * size)) - 1 };
            sb.push(seq, addr, size, value);
            model.push((seq, addr, size, value & mask));
        }
        let got = sb.forward(load_seq, probe_addr, probe_size);
        let want = model_forward(&model, load_seq, probe_addr, probe_size);
        prop_assert_eq!(got, want);
    }

    /// Squashing a suffix leaves forwarding equivalent to a buffer that
    /// never held the squashed stores.
    #[test]
    fn store_buffer_squash_equivalence(
        stores in proptest::collection::vec((0u64..64, size_strategy(), any::<u64>()), 1..16),
        cut in 0usize..16,
        probe in (0u64..80, size_strategy()),
    ) {
        let cut = cut.min(stores.len());
        let mut full = StoreBuffer::new(64);
        let mut prefix = StoreBuffer::new(64);
        for (i, &(addr, size, value)) in stores.iter().enumerate() {
            full.push(i as u64, addr, size, value);
            if i < cut {
                prefix.push(i as u64, addr, size, value);
            }
        }
        full.squash_from(cut as u64);
        let seq = stores.len() as u64 + 1;
        prop_assert_eq!(
            full.forward(seq, probe.0, probe.1),
            prefix.forward(seq, probe.0, probe.1)
        );
    }

    /// Cache timing is monotone and deterministic: completion is never
    /// before the request plus the hit latency, and replaying the same
    /// access stream twice gives identical times.
    #[test]
    fn cache_completion_bounds_and_determinism(
        addrs in proptest::collection::vec(0u64..(1 << 22), 1..200),
    ) {
        let run = || {
            let mut m = MemSystem::new(MemConfig::paper());
            let mut times = Vec::new();
            for (i, &a) in addrs.iter().enumerate() {
                let now = i as u64;
                let done = m.access(AccessKind::Read, a, now);
                // Hits take the full hit latency; a miss merging into an
                // outstanding fill may complete as soon as the fill
                // arrives (data bypass), but never in the same cycle.
                prop_assert!(done > now, "time travel: {} -> {}", now, done);
                times.push(done);
            }
            Ok(times)
        };
        prop_assert_eq!(run()?, run()?);
    }

    /// The overflow-safe range helpers agree with unbounded (u128)
    /// interval arithmetic everywhere — including at the very top of the
    /// address space, where the old `addr + size` formulas wrapped and
    /// produced false overlaps/covers (the store-buffer forwarding bug).
    #[test]
    fn range_math_matches_wide_arithmetic_at_the_boundary(
        raw_a in any::<u64>(),
        raw_b in any::<u64>(),
        near_top in any::<bool>(),
        sa in size_strategy(),
        sb in size_strategy(),
    ) {
        // Half the cases pin both ranges against u64::MAX, where the
        // wrap hazard lives; the rest roam the full space.
        let (a, b) = if near_top {
            (u64::MAX - (raw_a % 24), u64::MAX - (raw_b % 24))
        } else {
            (raw_a, raw_b)
        };
        let (a128, b128) = (a as u128, b as u128);
        let wide_overlap = a128 < b128 + sb as u128 && b128 < a128 + sa as u128;
        prop_assert_eq!(
            mds::mem::ranges_overlap(a, sa, b, sb),
            wide_overlap,
            "overlap([{a}; {sa}], [{b}; {sb}])"
        );
        let wide_covers = a128 <= b128 && b128 + sb as u128 <= a128 + sa as u128;
        prop_assert_eq!(
            mds::mem::range_covers(a, sa, b, sb),
            wide_covers,
            "covers([{a}; {sa}], [{b}; {sb}])"
        );
    }

    /// A block brought into the cache hits (with exactly the hit
    /// latency) once its fill and the bank port are free.
    #[test]
    fn refetch_after_fill_is_a_hit(addr in 0u64..(1 << 22)) {
        let mut m = MemSystem::new(MemConfig::paper());
        let t0 = m.access(AccessKind::Read, addr, 0);
        let t1 = m.access(AccessKind::Read, addr, t0 + 1);
        prop_assert_eq!(t1 - (t0 + 1), 2, "warm access must be a 2-cycle L1 hit");
    }
}

#[test]
fn cache_geometry_validates() {
    // Sanity outside proptest: paper geometries divide evenly.
    for p in [
        CacheParams::paper_l1i(),
        CacheParams::paper_l1d(),
        CacheParams::paper_l2(),
    ] {
        assert_eq!(
            p.sets_per_bank() * p.banks as u64 * p.assoc as u64 * p.block_bytes,
            p.size_bytes,
            "{}",
            p.name
        );
    }
}
