//! Shape-regression tests: the calibrated qualitative results the
//! reproduction stands on, asserted with generous tolerances so
//! refactoring cannot silently break them.

use mds::core::{CoreConfig, Policy, Simulator};
use mds::workloads::{Benchmark, SuiteParams};

fn run(b: Benchmark, policy: Policy) -> mds::core::SimResult {
    let trace = b.trace(&SuiteParams::test()).expect("trace");
    Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(&trace)
}

#[test]
fn compress_naive_missspeculation_band() {
    // Paper: 7.8%. Calibrated band: 3%..15%.
    let r = run(Benchmark::Compress, Policy::NasNaive);
    let rate = r.stats.misspeculation_rate();
    assert!(
        (0.03..0.15).contains(&rate),
        "129.compress NAV rate drifted out of band: {rate:.4}"
    );
}

#[test]
fn sync_rates_stay_tiny_across_classes() {
    for b in [Benchmark::Compress, Benchmark::Gcc, Benchmark::Su2cor] {
        let r = run(b, Policy::NasSync);
        assert!(
            r.stats.misspeculation_rate() < 0.005,
            "{b}: SYNC rate {:.5} (paper: 'virtually non-existent')",
            r.stats.misspeculation_rate()
        );
    }
}

#[test]
fn fp_oracle_gain_exceeds_int_class_floor() {
    // Paper: +154% fp vs +55% int on average. Assert the fp benchmark
    // with the deepest chains gains hugely and a mild int one modestly.
    let su2cor_no = run(Benchmark::Su2cor, Policy::NasNo);
    let su2cor_or = run(Benchmark::Su2cor, Policy::NasOracle);
    let gain = su2cor_or.ipc() / su2cor_no.ipc();
    assert!(gain > 2.0, "103.su2cor oracle gain collapsed: {gain:.2}x");

    let go_no = run(Benchmark::Go, Policy::NasNo);
    let go_or = run(Benchmark::Go, Policy::NasOracle);
    let gain = go_or.ipc() / go_no.ipc();
    assert!(
        (1.05..3.0).contains(&gain),
        "099.go oracle gain out of band: {gain:.2}x"
    );
}

#[test]
fn sync_captures_most_of_the_oracle_gain() {
    // The paper's central result, on the benchmark with the most to gain.
    let nav = run(Benchmark::Compress, Policy::NasNaive);
    let sync = run(Benchmark::Compress, Policy::NasSync);
    let oracle = run(Benchmark::Compress, Policy::NasOracle);
    let captured = (sync.ipc() - nav.ipc()) / (oracle.ipc() - nav.ipc());
    assert!(
        captured > 0.8,
        "SYNC captured only {captured:.2} of the oracle gain on compress"
    );
}

#[test]
fn table1_fractions_hold_at_bench_scale() {
    let params = SuiteParams::bench();
    for b in [Benchmark::Fpppp, Benchmark::Vortex, Benchmark::Mgrid] {
        let t = b.trace(&params).expect("trace");
        let row = b.table1();
        assert!(
            (t.counts().load_fraction() - row.loads).abs() < 0.05,
            "{b}: load fraction {:.3} vs {:.3}",
            t.counts().load_fraction(),
            row.loads
        );
    }
}

fn ipc_at(b: Benchmark, policy: Policy, lat: u64) -> f64 {
    let trace = b.trace(&SuiteParams::test()).expect("trace");
    Simulator::new(
        CoreConfig::paper_128()
            .with_policy(policy)
            .with_addr_sched_latency(lat),
    )
    .run(&trace)
    .ipc()
}

#[test]
fn scheduler_latency_erodes_as_modes_monotonically() {
    // Figures 3 and 4: every extra cycle between address posting and
    // scheduler reaction costs performance, under both AS policies.
    for b in [Benchmark::Compress, Benchmark::Vortex, Benchmark::Su2cor] {
        for policy in [Policy::AsNo, Policy::AsNaive] {
            let (l0, l1, l2) = (
                ipc_at(b, policy, 0),
                ipc_at(b, policy, 1),
                ipc_at(b, policy, 2),
            );
            assert!(
                l0 >= l1 * 0.999 && l1 >= l2 * 0.999,
                "{b} {policy}: latency must cost monotonically: {l0:.3} / {l1:.3} / {l2:.3}"
            );
            assert!(
                l0 > l2 * 1.005,
                "{b} {policy}: two latency cycles must cost measurably: {l0:.3} vs {l2:.3}"
            );
        }
    }
}

#[test]
fn latency_erases_as_no_advantage_over_naive_speculation() {
    // Figure 3's punchline: with an ideal (0-cycle) scheduler, AS/NO
    // edges out plain naive speculation on 129.compress — but one to two
    // cycles of scheduler latency erase the advantage entirely.
    let nas_nav = ipc_at(Benchmark::Compress, Policy::NasNaive, 0);
    let ideal = ipc_at(Benchmark::Compress, Policy::AsNo, 0);
    let slow = ipc_at(Benchmark::Compress, Policy::AsNo, 2);
    assert!(
        ideal > nas_nav * 1.01,
        "ideal AS/NO should beat NAS/NAV on compress: {ideal:.3} vs {nas_nav:.3}"
    );
    assert!(
        slow < nas_nav,
        "2-cycle AS/NO must fall behind NAS/NAV on compress: {slow:.3} vs {nas_nav:.3}"
    );
}

#[test]
fn as_nav_stays_ahead_of_nas_nav_even_with_latency() {
    // Figure 4: AS/NAV keeps naive speculation on top of the address
    // scheduler, so latency erodes but does not erase its advantage.
    let nas_nav = ipc_at(Benchmark::Compress, Policy::NasNaive, 0);
    for lat in 0..=2 {
        let asn = ipc_at(Benchmark::Compress, Policy::AsNaive, lat);
        assert!(
            asn > nas_nav * 1.02,
            "AS/NAV at latency {lat} should stay ahead of NAS/NAV: {asn:.3} vs {nas_nav:.3}"
        );
    }
}

#[test]
fn as_nav_stays_clean_on_the_continuous_window() {
    for b in [Benchmark::Hydro2d, Benchmark::Perl] {
        let r = run(b, Policy::AsNaive);
        assert!(
            r.stats.misspeculation_rate() < 0.002,
            "{b}: AS/NAV rate {:.5} — the address scheduler must keep this near zero",
            r.stats.misspeculation_rate()
        );
    }
}
