//! Property-based tests of the CPI-stack attribution: for arbitrary
//! small programs under every policy, the stack partitions the cycle
//! count exactly, and the distribution histograms agree with the flat
//! counters they refine.

use mds::core::{CoreConfig, Policy, Simulator, WindowModel};
use mds::isa::{Asm, Interpreter, Reg, Trace};
use mds::obs::StallCause;
use proptest::prelude::*;

/// A random but well-formed loop: loads, stores, ALU ops, and a
/// loop-carried memory recurrence, parameterized by proptest.
fn random_loop_trace(iters: u64, body: &[(u8, u8)]) -> Trace {
    let mut a = Asm::new();
    let arr = a.alloc_data(4096 + 64, 64);
    let cell = a.alloc_data(8, 8);
    let (cnt, base, cbase) = (Reg::int(1), Reg::int(2), Reg::int(3));
    a.li(cnt, iters as i64);
    a.li(base, arr as i64);
    a.li(cbase, cell as i64);
    let top = a.label();
    a.bind(top);
    for &(kind, operand) in body {
        let r = Reg::int(4 + (operand % 6));
        let off = (operand as i64 % 64) * 4;
        match kind % 5 {
            0 => a.lw(r, base, off),
            1 => a.sw(r, base, off),
            2 => a.addi(r, r, operand as i64),
            3 => {
                a.lw(r, cbase, 0);
                a.addi(r, r, 1);
                a.sw(r, cbase, 0);
            }
            _ => {
                let r2 = Reg::int(4 + ((operand / 7) % 6));
                a.add(r, r, r2);
            }
        }
    }
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    Interpreter::new(a.assemble().unwrap())
        .run(2_000_000)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every cycle is attributed exactly once: commit cycles plus every
    /// stall cause always equals the simulated cycle count, whatever
    /// the program or policy.
    #[test]
    fn cpi_stack_partitions_cycles_under_every_policy(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..20),
        iters in 1u64..32,
    ) {
        let trace = random_loop_trace(iters, &body);
        let policies = Policy::ALL.into_iter().chain([Policy::NasStoreSets]);
        for policy in policies {
            let r = Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(&trace);
            prop_assert_eq!(
                r.stats.cpi.total_cycles(),
                r.stats.cycles,
                "partition broken under {}: commit {} + stalls {} != {}",
                policy,
                r.stats.cpi.commit_cycles,
                r.stats.cpi.total_stalls(),
                r.stats.cycles
            );
        }
    }

    /// The partition also holds for the distributed split window.
    #[test]
    fn cpi_stack_partitions_cycles_in_the_split_window(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        iters in 1u64..24,
        units in 2u32..5,
    ) {
        let trace = random_loop_trace(iters, &body);
        let r = Simulator::new(
            CoreConfig::paper_128()
                .with_policy(Policy::AsNaive)
                .with_window_model(WindowModel::Split { units, task_size: 16 }),
        )
        .run(&trace);
        prop_assert_eq!(r.stats.cpi.total_cycles(), r.stats.cycles);
    }

    /// The histograms refine existing flat counters and must agree with
    /// them exactly: same event counts, same cycle sums.
    #[test]
    fn histograms_agree_with_flat_counters(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..20),
        iters in 1u64..32,
    ) {
        let trace = random_loop_trace(iters, &body);
        for policy in [Policy::NasNo, Policy::NasNaive, Policy::NasSync, Policy::AsNaive] {
            let r = Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(&trace);
            let s = &r.stats;
            prop_assert_eq!(s.false_dep_delay.count(), s.false_dep_loads, "{}", policy);
            prop_assert_eq!(s.false_dep_delay.sum(), s.false_dep_cycles, "{}", policy);
            prop_assert_eq!(s.forward_distance.count(), s.forwarded_loads, "{}", policy);
            prop_assert_eq!(s.window_occupancy.count(), s.cycles, "{}", policy);
            prop_assert_eq!(s.squash_penalty.count(), s.misspeculations, "{}", policy);
            prop_assert_eq!(s.squash_penalty.sum(), s.squashed, "{}", policy);
        }
    }

    /// Fast-forward bulk attribution must charge the exact same stacks
    /// as per-cycle attribution: the partition invariant holds in both
    /// modes and the CPI stacks are byte-identical, across randomized
    /// machine shapes (window size, width, policy, window model).
    #[test]
    fn fast_forward_cpi_stacks_match_per_cycle(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        iters in 1u64..24,
        window in 0usize..3,
        width in 0usize..2,
        split in any::<bool>(),
        policy_ix in 0usize..9,
    ) {
        let trace = random_loop_trace(iters, &body);
        let policies = [
            Policy::NasNo, Policy::NasNaive, Policy::NasSelective,
            Policy::NasStoreBarrier, Policy::NasSync, Policy::NasStoreSets,
            Policy::NasOracle, Policy::AsNo, Policy::AsNaive,
        ];
        let mut cfg = CoreConfig::paper_128()
            .with_policy(policies[policy_ix])
            .with_window_size([16, 64, 128][window]);
        cfg.issue_width = [4, 8][width];
        cfg.commit_width = cfg.issue_width;
        if split {
            cfg = cfg.with_window_model(WindowModel::Split { units: 3, task_size: 16 });
        }
        let fast = Simulator::new(cfg.clone()).run(&trace);
        let slow = Simulator::new(cfg).run_per_cycle(&trace);
        prop_assert_eq!(fast.stats.cpi.total_cycles(), fast.stats.cycles);
        prop_assert_eq!(
            format!("{:?}", fast.stats.cpi),
            format!("{:?}", slow.stats.cpi),
            "CPI stacks diverged between event-driven and per-cycle cores"
        );
        prop_assert_eq!(fast.stats, slow.stats);
    }

    /// A no-speculation policy never charges cycles to squash recovery,
    /// and a policy without an address scheduler never charges
    /// scheduler latency.
    #[test]
    fn causes_respect_policy_capabilities(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        iters in 1u64..24,
    ) {
        let trace = random_loop_trace(iters, &body);
        let no = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasNo)).run(&trace);
        prop_assert_eq!(no.stats.cpi.stall(StallCause::SquashRecovery), 0);
        prop_assert_eq!(no.stats.cpi.stall(StallCause::SchedulerLatency), 0);
        let oracle =
            Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasOracle)).run(&trace);
        prop_assert_eq!(oracle.stats.cpi.stall(StallCause::SquashRecovery), 0);
        prop_assert_eq!(oracle.stats.cpi.stall(StallCause::FalseDependence), 0);
    }
}
