//! Differential equivalence of the event-driven fast-forward core.
//!
//! [`Simulator::run`] skips provably-quiet cycle spans in one step
//! (bulk-attributing the skipped cycles to the head's stall cause and
//! bulk-sampling window occupancy); [`Simulator::run_per_cycle`]
//! executes every cycle individually. The two must produce *identical*
//! [`SimStats`] — same cycle count, same CPI-stack partition, same
//! histograms, same memory and front-end counters — because
//! fast-forward only elides cycles on which nothing could have
//! happened. These tests compare the full `Debug` rendering so any new
//! statistic is automatically covered.
//!
//! Coverage mirrors `sched_equivalence.rs`: all nine policies,
//! continuous and split windows, address-scheduler latencies 0–2, and
//! both recovery models — plus a sanity check that fast-forward
//! actually skips cycles on latency-bound traces (an accidental
//! always-active bug would pass equivalence trivially).

use mds::core::{CoreConfig, Policy, Recovery, Simulator, WindowModel};
use mds::isa::{Asm, Interpreter, Reg, Trace};
use mds::workloads::{Benchmark, SuiteParams};
use proptest::prelude::*;

const ALL_NINE: [Policy; 9] = [
    Policy::NasNo,
    Policy::NasNaive,
    Policy::NasSelective,
    Policy::NasStoreBarrier,
    Policy::NasSync,
    Policy::NasStoreSets,
    Policy::NasOracle,
    Policy::AsNo,
    Policy::AsNaive,
];

/// Runs the config twice — event-driven and per-cycle — and checks the
/// stats are identical in every field.
fn assert_ff_equivalent(cfg: CoreConfig, trace: &Trace, what: &str) -> u64 {
    let fast = Simulator::new(cfg.clone()).run(trace);
    let slow = Simulator::new(cfg).run_per_cycle(trace);
    assert_eq!(
        format!("{:?}", fast.stats),
        format!("{:?}", slow.stats),
        "{what}: event-driven stats diverged from per-cycle stats"
    );
    assert_eq!(
        slow.skipped_cycles, 0,
        "{what}: per-cycle mode must not skip"
    );
    fast.skipped_cycles
}

/// A pointer-chase through memory with a long-latency multiply feeding
/// every address: the window drains and the machine sits quiet for many
/// cycles at a time — maximal fast-forward opportunity.
fn latency_bound_trace(iters: u64) -> Trace {
    let mut a = Asm::new();
    let arr = a.alloc_data(8 * 130, 8);
    let (i, n, base, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(5));
    a.li(i, 1);
    a.li(n, iters as i64 + 1);
    a.li(base, arr as i64);
    let top = a.label();
    a.bind(top);
    a.mult(i, i);
    a.mflo(t); // long-latency producer
    a.div(t, n);
    a.mflo(t); // and a divide behind it
    a.sll(t, i, 3);
    a.add(t, base, t);
    a.lw(Reg::int(6), t, -8);
    a.add(Reg::int(6), Reg::int(6), i);
    a.sw(Reg::int(6), t, 0);
    a.addi(i, i, 1);
    a.slt(Reg::int(7), i, n);
    a.bgtz(Reg::int(7), top);
    a.halt();
    Interpreter::new(a.assemble().unwrap())
        .run(1_000_000)
        .unwrap()
}

/// The same random-loop generator the scheduler-equivalence proptests
/// use: loads, stores, ALU ops, and a loop-carried memory recurrence.
fn random_loop_trace(iters: u64, body: &[(u8, u8)]) -> Trace {
    let mut a = Asm::new();
    let arr = a.alloc_data(4096 + 64, 64);
    let cell = a.alloc_data(8, 8);
    let (cnt, base, cbase) = (Reg::int(1), Reg::int(2), Reg::int(3));
    a.li(cnt, iters as i64);
    a.li(base, arr as i64);
    a.li(cbase, cell as i64);
    let top = a.label();
    a.bind(top);
    for &(kind, operand) in body {
        let r = Reg::int(4 + (operand % 6));
        let off = (operand as i64 % 64) * 4;
        match kind % 5 {
            0 => a.lw(r, base, off),
            1 => a.sw(r, base, off),
            2 => a.addi(r, r, operand as i64),
            3 => {
                a.lw(r, cbase, 0);
                a.addi(r, r, 1);
                a.sw(r, cbase, 0);
            }
            _ => {
                let r2 = Reg::int(4 + ((operand / 7) % 6));
                a.add(r, r, r2);
            }
        }
    }
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    Interpreter::new(a.assemble().unwrap())
        .run(2_000_000)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random programs, every policy, continuous window.
    #[test]
    fn fast_forward_matches_per_cycle_on_random_programs(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        iters in 1u64..20,
    ) {
        let trace = random_loop_trace(iters, &body);
        for policy in ALL_NINE {
            assert_ff_equivalent(
                CoreConfig::paper_128().with_policy(policy),
                &trace,
                &format!("{policy} continuous"),
            );
        }
    }

    /// Random programs, split window and nonzero address-scheduler
    /// latency (exercises round-robin issue priority, per-unit fetch
    /// widths, and the task-advance horizon).
    #[test]
    fn fast_forward_matches_per_cycle_on_split_window(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        iters in 1u64..16,
        units in 2u32..5,
    ) {
        let trace = random_loop_trace(iters, &body);
        for policy in [Policy::NasNaive, Policy::NasSync, Policy::AsNo, Policy::AsNaive] {
            assert_ff_equivalent(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_window_model(WindowModel::Split { units, task_size: 16 })
                    .with_addr_sched_latency(1),
                &trace,
                &format!("{policy} split"),
            );
        }
    }

    /// Selective reissue: recovery resets issued ops in place, so the
    /// candidate horizon must stay sound across re-issues.
    #[test]
    fn fast_forward_matches_per_cycle_under_selective_reissue(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        iters in 1u64..16,
    ) {
        let trace = random_loop_trace(iters, &body);
        for policy in [Policy::NasNaive, Policy::NasSelective, Policy::AsNaive] {
            assert_ff_equivalent(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_recovery(Recovery::SelectiveReissue),
                &trace,
                &format!("{policy} selective-reissue"),
            );
        }
    }
}

/// Deterministic sweep on a real workload: all nine policies, both
/// window models, address-scheduler latencies 0–2, both recoveries.
#[test]
fn fast_forward_equivalence_sweep_on_workload_trace() {
    let trace = Benchmark::Li.trace(&SuiteParams::tiny()).expect("trace");
    for policy in ALL_NINE {
        for lat in 0..=2 {
            assert_ff_equivalent(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_addr_sched_latency(lat),
                &trace,
                &format!("{policy} continuous lat={lat}"),
            );
        }
        for recovery in [Recovery::Squash, Recovery::SelectiveReissue] {
            assert_ff_equivalent(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_recovery(recovery),
                &trace,
                &format!("{policy} {recovery:?}"),
            );
        }
        assert_ff_equivalent(
            CoreConfig::paper_128()
                .with_policy(policy)
                .with_window_model(WindowModel::Split {
                    units: 4,
                    task_size: 16,
                })
                .with_addr_sched_latency(2),
            &trace,
            &format!("{policy} split lat=2"),
        );
    }
}

/// Fast-forward must actually skip cycles where the machine is
/// latency-bound, or the equivalence above proves nothing.
#[test]
fn fast_forward_skips_cycles_on_latency_bound_code() {
    let trace = latency_bound_trace(200);
    let mut total_skipped = 0;
    for policy in ALL_NINE {
        // A small window drains behind the serial chain, leaving long
        // quiet spans (the effect is present at 128 too, just diluted
        // by cross-iteration overlap).
        total_skipped += assert_ff_equivalent(
            CoreConfig::paper_128()
                .with_window_size(16)
                .with_policy(policy),
            &trace,
            &format!("{policy} latency-bound"),
        );
    }
    assert!(
        total_skipped > 1_000,
        "expected substantial cycle skipping on a latency-bound trace, got {total_skipped}"
    );
}

/// A non-divisible fetch width over split-window units must deliver the
/// full width (8 over 3 units fetches 8/cycle as 3+3+2, not 6) and stay
/// mode-equivalent.
#[test]
fn non_divisible_fetch_width_completes_and_matches() {
    let trace = random_loop_trace(12, &[(0, 3), (2, 9), (1, 3), (4, 20), (3, 0)]);
    for units in [3u32, 5] {
        let cfg = CoreConfig::paper_128()
            .with_policy(Policy::NasNaive)
            .with_window_model(WindowModel::Split {
                units,
                task_size: 16,
            });
        let skipped = assert_ff_equivalent(cfg.clone(), &trace, &format!("{units} units"));
        let res = Simulator::new(cfg).run(&trace);
        assert_eq!(res.stats.committed, trace.len() as u64);
        let _ = skipped;
    }
}
