//! Differential equivalence of shared trace artifacts.
//!
//! `Machine` used to rebuild its dependence structures (oracle
//! producers, register dependence edges) per configuration; they now
//! live in a [`TraceArtifacts`] bundle built once per trace and shared
//! — including across threads — by every simulation replaying it. This
//! harness proves sharing changed nothing observable: for every policy
//! and both window models, a run with one shared bundle produces
//! `SimStats` bit-identical to [`Simulator::run`], which builds a fresh
//! bundle per call (the per-machine-rebuild baseline).
//!
//! On top of the core-level check, a runner-level test asserts that the
//! memoizing, multi-threaded [`Runner`] — which serves one `Arc`-shared
//! bundle per benchmark to all worker threads — matches direct
//! single-threaded `Simulator::run` calls exactly, so every rendered
//! table stays byte-identical with the artifact cache on or off.

use mds::core::{CoreConfig, Policy, Recovery, Simulator, TraceArtifacts, WindowModel};
use mds::harness::{Runner, Suite};
use mds::isa::Trace;
use mds::workloads::{Benchmark, SuiteParams};

const ALL_NINE: [Policy; 9] = [
    Policy::NasNo,
    Policy::NasNaive,
    Policy::NasSelective,
    Policy::NasStoreBarrier,
    Policy::NasSync,
    Policy::NasStoreSets,
    Policy::NasOracle,
    Policy::AsNo,
    Policy::AsNaive,
];

/// Runs the config twice — rebuilding artifacts per run, and against a
/// bundle shared across the whole sweep — and checks the stats match.
fn assert_equivalent(cfg: CoreConfig, trace: &Trace, shared: &TraceArtifacts, what: &str) {
    let rebuilt = Simulator::new(cfg.clone()).run(trace);
    let via_shared = Simulator::new(cfg).run_with_artifacts(trace, shared);
    assert_eq!(
        rebuilt.stats, via_shared.stats,
        "{what}: shared artifacts diverged from per-machine rebuild"
    );
    assert_eq!(rebuilt.policy_name, via_shared.policy_name, "{what}");
}

/// All nine policies, continuous and split windows, both recovery
/// models — one shared bundle serving the entire config matrix.
#[test]
fn shared_artifacts_match_rebuild_across_the_config_matrix() {
    let trace = Benchmark::Li.trace(&SuiteParams::tiny()).expect("trace");
    let shared = TraceArtifacts::shared(&trace);
    for policy in ALL_NINE {
        assert_equivalent(
            CoreConfig::paper_128().with_policy(policy),
            &trace,
            &shared,
            &format!("{policy} continuous"),
        );
        assert_equivalent(
            CoreConfig::paper_128()
                .with_policy(policy)
                .with_window_model(WindowModel::Split {
                    units: 4,
                    task_size: 16,
                }),
            &trace,
            &shared,
            &format!("{policy} split"),
        );
        assert_equivalent(
            CoreConfig::paper_128()
                .with_policy(policy)
                .with_recovery(Recovery::SelectiveReissue),
            &trace,
            &shared,
            &format!("{policy} selective-reissue"),
        );
    }
}

/// A memory-heavy second workload: the recurrence benchmarks stress the
/// oracle producer lists and the squash/reissue paths that read the
/// CSR rows hardest.
#[test]
fn shared_artifacts_match_rebuild_on_a_memory_recurrence() {
    let trace = Benchmark::Tomcatv
        .trace(&SuiteParams::tiny())
        .expect("trace");
    let shared = TraceArtifacts::shared(&trace);
    for policy in [Policy::NasNaive, Policy::NasOracle, Policy::AsNaive] {
        assert_equivalent(
            CoreConfig::paper_128().with_policy(policy),
            &trace,
            &shared,
            &format!("{policy} recurrence"),
        );
    }
}

/// The parallel, memoizing runner (shared `Arc` bundle per benchmark,
/// work-stealing threads) must match direct single-threaded runs that
/// rebuild artifacts per simulation.
#[test]
fn runner_with_artifact_cache_matches_direct_simulation() {
    let benchmarks = [Benchmark::Compress, Benchmark::Swim];
    let suite = Suite::generate(&benchmarks, &SuiteParams::tiny()).expect("suite");
    let mut direct: Vec<(Benchmark, mds::core::SimResult)> = Vec::new();
    for &p in &ALL_NINE {
        let cfg = CoreConfig::paper_128().with_policy(p);
        for &b in &benchmarks {
            direct.push((b, Simulator::new(cfg.clone()).run(suite.trace(b))));
        }
    }

    let runner = Runner::new(Suite::generate(&benchmarks, &SuiteParams::tiny()).expect("suite"))
        .with_jobs(4);
    let configs: Vec<CoreConfig> = ALL_NINE
        .iter()
        .map(|&p| CoreConfig::paper_128().with_policy(p))
        .collect();
    let batched: Vec<(Benchmark, mds::core::SimResult)> =
        runner.run_batch(&configs).into_iter().flatten().collect();

    assert_eq!(
        runner.stats().artifact_builds,
        benchmarks.len() as u64,
        "one shared bundle per benchmark"
    );
    assert_eq!(format!("{direct:?}"), format!("{batched:?}"));
}
