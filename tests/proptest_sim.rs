//! Property-based tests of the timing core: for arbitrary small
//! programs, speculation policies may change *timing* but never
//! architectural outcome, and the fundamental orderings hold.

use mds::core::{CoreConfig, Policy, Simulator, WindowModel};
use mds::isa::{Asm, Interpreter, Reg, Trace};
use proptest::prelude::*;

/// A random but well-formed loop: a mix of loads, stores, ALU ops and a
/// loop-carried memory recurrence, parameterized by proptest.
fn random_loop_trace(
    iters: u64,
    body: &[(u8, u8)], // (kind selector, operand selector)
) -> Trace {
    let mut a = Asm::new();
    let arr = a.alloc_data(4096 + 64, 64);
    let cell = a.alloc_data(8, 8);
    let (cnt, base, cbase) = (Reg::int(1), Reg::int(2), Reg::int(3));
    a.li(cnt, iters as i64);
    a.li(base, arr as i64);
    a.li(cbase, cell as i64);
    let top = a.label();
    a.bind(top);
    for &(kind, operand) in body {
        let r = Reg::int(4 + (operand % 6));
        let off = (operand as i64 % 64) * 4;
        match kind % 5 {
            0 => a.lw(r, base, off),
            1 => a.sw(r, base, off),
            2 => a.addi(r, r, operand as i64),
            3 => {
                // Loop-carried recurrence on the shared cell.
                a.lw(r, cbase, 0);
                a.addi(r, r, 1);
                a.sw(r, cbase, 0);
            }
            _ => {
                let r2 = Reg::int(4 + ((operand / 7) % 6));
                a.add(r, r, r2);
            }
        }
    }
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    Interpreter::new(a.assemble().unwrap())
        .run(2_000_000)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy commits exactly the trace, in order, regardless of
    /// how much speculation or squashing happened along the way.
    #[test]
    fn speculation_never_changes_architectural_outcome(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        iters in 1u64..40,
    ) {
        let trace = random_loop_trace(iters, &body);
        let reference = Simulator::new(
            CoreConfig::paper_128().with_policy(Policy::NasNo),
        ).run(&trace);
        let policies = Policy::ALL.into_iter().chain([Policy::NasStoreSets]);
        for policy in policies {
            let r = Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(&trace);
            prop_assert_eq!(r.stats.committed, trace.len() as u64, "{}", policy);
            prop_assert_eq!(r.stats.committed_loads, reference.stats.committed_loads);
            prop_assert_eq!(r.stats.committed_stores, reference.stats.committed_stores);
        }
    }

    /// The oracle never loses to no-speculation, and no-speculation
    /// configurations never squash.
    #[test]
    fn oracle_dominates_and_conservative_policies_do_not_squash(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..20),
        iters in 1u64..30,
    ) {
        let trace = random_loop_trace(iters, &body);
        let no = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasNo)).run(&trace);
        let oracle =
            Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasOracle)).run(&trace);
        prop_assert_eq!(no.stats.misspeculations, 0);
        prop_assert_eq!(oracle.stats.misspeculations, 0);
        // Resource contention (ports, banks, issue slots) can cost the
        // oracle a handful of cycles on degenerate programs — the paper's
        // "opportunity cost" observation — but it must never lose big.
        prop_assert!(
            oracle.stats.cycles <= no.stats.cycles + no.stats.cycles / 20 + 4,
            "oracle {} cycles vs no-spec {}",
            oracle.stats.cycles,
            no.stats.cycles
        );
    }

    /// The split window commits the same stream as the continuous one.
    #[test]
    fn split_window_is_architecturally_equivalent(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        iters in 1u64..24,
        units in 2u32..5,
    ) {
        let trace = random_loop_trace(iters, &body);
        let split = Simulator::new(
            CoreConfig::paper_128()
                .with_policy(Policy::AsNaive)
                .with_window_model(WindowModel::Split { units, task_size: 16 }),
        )
        .run(&trace);
        prop_assert_eq!(split.stats.committed, trace.len() as u64);
    }

    /// Timing simulation is a pure function of (trace, config).
    #[test]
    fn simulation_is_deterministic(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        iters in 1u64..16,
    ) {
        let trace = random_loop_trace(iters, &body);
        let cfg = CoreConfig::paper_128().with_policy(Policy::NasSync);
        let a = Simulator::new(cfg.clone()).run(&trace);
        let b = Simulator::new(cfg).run(&trace);
        prop_assert_eq!(a.stats, b.stats);
    }
}
