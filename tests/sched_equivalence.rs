//! Differential equivalence of the incremental issue-stage scheduler.
//!
//! The issue stage answers its scheduling gates from incrementally
//! maintained state (`mds_core::sched`) instead of per-cycle window
//! scans. This harness proves the refactor changed nothing observable:
//! [`Simulator::run_paranoid`] (compiled via the `paranoid-sched`
//! feature, enabled for this test build in the root `Cargo.toml`) runs
//! the retired scan-based gates *alongside* the incremental ones and
//! asserts agreement at every single gate evaluation, cycle-locked; on
//! top of that, the tests assert the paranoid run's `SimStats` are
//! bit-identical to the plain run's.
//!
//! Coverage: all nine policies, continuous and split windows, address
//! scheduler latencies 0–2, nonzero squash latency (the default is 1),
//! and both recovery models.

use mds::core::{CoreConfig, Policy, Recovery, Simulator, WindowModel};
use mds::isa::{Asm, Interpreter, Reg, Trace};
use mds::workloads::{Benchmark, SuiteParams};
use proptest::prelude::*;

const ALL_NINE: [Policy; 9] = [
    Policy::NasNo,
    Policy::NasNaive,
    Policy::NasSelective,
    Policy::NasStoreBarrier,
    Policy::NasSync,
    Policy::NasStoreSets,
    Policy::NasOracle,
    Policy::AsNo,
    Policy::AsNaive,
];

/// Runs the config twice — plain and paranoid — and checks the stats
/// match. The paranoid run aborts on the first gate divergence, so a
/// pass here is a per-evaluation equivalence proof, not a summary check.
fn assert_equivalent(cfg: CoreConfig, trace: &Trace, what: &str) {
    let plain = Simulator::new(cfg.clone()).run(trace);
    let paranoid = Simulator::new(cfg).run_paranoid(trace);
    assert_eq!(
        plain.stats, paranoid.stats,
        "{what}: paranoid run diverged from plain run"
    );
}

/// The same random-loop generator the simulator proptests use: loads,
/// stores, ALU ops, and a loop-carried memory recurrence.
fn random_loop_trace(iters: u64, body: &[(u8, u8)]) -> Trace {
    let mut a = Asm::new();
    let arr = a.alloc_data(4096 + 64, 64);
    let cell = a.alloc_data(8, 8);
    let (cnt, base, cbase) = (Reg::int(1), Reg::int(2), Reg::int(3));
    a.li(cnt, iters as i64);
    a.li(base, arr as i64);
    a.li(cbase, cell as i64);
    let top = a.label();
    a.bind(top);
    for &(kind, operand) in body {
        let r = Reg::int(4 + (operand % 6));
        let off = (operand as i64 % 64) * 4;
        match kind % 5 {
            0 => a.lw(r, base, off),
            1 => a.sw(r, base, off),
            2 => a.addi(r, r, operand as i64),
            3 => {
                a.lw(r, cbase, 0);
                a.addi(r, r, 1);
                a.sw(r, cbase, 0);
            }
            _ => {
                let r2 = Reg::int(4 + ((operand / 7) % 6));
                a.add(r, r, r2);
            }
        }
    }
    a.addi(cnt, cnt, -1);
    a.bgtz(cnt, top);
    a.halt();
    Interpreter::new(a.assemble().unwrap())
        .run(2_000_000)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random programs, every policy, continuous window.
    #[test]
    fn incremental_gates_match_scans_on_random_programs(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        iters in 1u64..20,
    ) {
        let trace = random_loop_trace(iters, &body);
        for policy in ALL_NINE {
            assert_equivalent(
                CoreConfig::paper_128().with_policy(policy),
                &trace,
                &format!("{policy} continuous"),
            );
        }
    }

    /// Random programs, split window (round-robin issue priority) and
    /// nonzero address-scheduler latency.
    #[test]
    fn incremental_gates_match_scans_on_split_window(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        iters in 1u64..16,
        units in 2u32..5,
    ) {
        let trace = random_loop_trace(iters, &body);
        for policy in [Policy::NasNaive, Policy::NasSync, Policy::AsNo, Policy::AsNaive] {
            assert_equivalent(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_window_model(WindowModel::Split { units, task_size: 16 })
                    .with_addr_sched_latency(1),
                &trace,
                &format!("{policy} split"),
            );
        }
    }

    /// Selective reissue exercises the store-reset path
    /// (`SchedState::on_store_reset`), where a store can re-enter the
    /// pending lists while its old execution event is still queued.
    #[test]
    fn incremental_gates_match_scans_under_selective_reissue(
        body in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        iters in 1u64..16,
    ) {
        let trace = random_loop_trace(iters, &body);
        for policy in [Policy::NasNaive, Policy::NasSelective, Policy::AsNaive] {
            assert_equivalent(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_recovery(Recovery::SelectiveReissue),
                &trace,
                &format!("{policy} selective-reissue"),
            );
        }
    }
}

/// Deterministic sweep on a real workload: all nine policies, both
/// window models, address-scheduler latencies 0–2.
#[test]
fn equivalence_sweep_on_workload_trace() {
    let trace = Benchmark::Li.trace(&SuiteParams::tiny()).expect("trace");
    for policy in ALL_NINE {
        for lat in 0..=2 {
            assert_equivalent(
                CoreConfig::paper_128()
                    .with_policy(policy)
                    .with_addr_sched_latency(lat),
                &trace,
                &format!("{policy} continuous lat={lat}"),
            );
        }
        assert_equivalent(
            CoreConfig::paper_128()
                .with_policy(policy)
                .with_window_model(WindowModel::Split {
                    units: 4,
                    task_size: 16,
                })
                .with_addr_sched_latency(2),
            &trace,
            &format!("{policy} split lat=2"),
        );
    }
}
