//! Property-based tests of the ISA substrate: the interpreter against a
//! reference evaluator, and the memory image against a byte-map model.

use mds::isa::{Asm, Interpreter, MemImage, Op, Reg};
use proptest::prelude::*;

/// A random straight-line integer ALU instruction on registers r1..r8.
#[derive(Debug, Clone, Copy)]
enum AluOp {
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Xor(u8, u8, u8),
    Addi(u8, u8, i32),
    Slt(u8, u8, u8),
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    let r = 1u8..9;
    prop_oneof![
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| AluOp::Add(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| AluOp::Sub(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| AluOp::And(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| AluOp::Or(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| AluOp::Xor(a, b, c)),
        (r.clone(), r.clone(), any::<i32>()).prop_map(|(a, b, i)| AluOp::Addi(a, b, i)),
        (r.clone(), r.clone(), r).prop_map(|(a, b, c)| AluOp::Slt(a, b, c)),
    ]
}

/// Reference evaluation of the same operation on a model register file.
fn reference_eval(regs: &mut [u64; 9], op: AluOp) {
    let get = |regs: &[u64; 9], r: u8| regs[r as usize];
    match op {
        AluOp::Add(d, a, b) => regs[d as usize] = get(regs, a).wrapping_add(get(regs, b)),
        AluOp::Sub(d, a, b) => regs[d as usize] = get(regs, a).wrapping_sub(get(regs, b)),
        AluOp::And(d, a, b) => regs[d as usize] = get(regs, a) & get(regs, b),
        AluOp::Or(d, a, b) => regs[d as usize] = get(regs, a) | get(regs, b),
        AluOp::Xor(d, a, b) => regs[d as usize] = get(regs, a) ^ get(regs, b),
        AluOp::Addi(d, a, i) => regs[d as usize] = get(regs, a).wrapping_add(i as i64 as u64),
        AluOp::Slt(d, a, b) => {
            regs[d as usize] = ((get(regs, a) as i64) < (get(regs, b) as i64)) as u64
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interpreter agrees with a reference evaluator on random
    /// straight-line ALU programs (observed through stores).
    #[test]
    fn interpreter_matches_reference(
        seeds in proptest::collection::vec(any::<i32>(), 8),
        ops in proptest::collection::vec(alu_op(), 1..40),
    ) {
        let mut model: [u64; 9] = [0; 9];
        let mut a = Asm::new();
        let out = a.alloc_data(8 * 9, 8);
        for (k, &s) in seeds.iter().enumerate() {
            let r = k as u8 + 1;
            a.li(Reg::int(r), s as i64);
            model[r as usize] = s as i64 as u64;
        }
        for &op in &ops {
            match op {
                AluOp::Add(d, x, y) => a.add(Reg::int(d), Reg::int(x), Reg::int(y)),
                AluOp::Sub(d, x, y) => a.sub(Reg::int(d), Reg::int(x), Reg::int(y)),
                AluOp::And(d, x, y) => a.and(Reg::int(d), Reg::int(x), Reg::int(y)),
                AluOp::Or(d, x, y) => a.or(Reg::int(d), Reg::int(x), Reg::int(y)),
                AluOp::Xor(d, x, y) => a.xor(Reg::int(d), Reg::int(x), Reg::int(y)),
                AluOp::Addi(d, x, i) => a.addi(Reg::int(d), Reg::int(x), i as i64),
                AluOp::Slt(d, x, y) => a.slt(Reg::int(d), Reg::int(x), Reg::int(y)),
            }
            reference_eval(&mut model, op);
        }
        // Store every register so the trace exposes the final state.
        let base = Reg::int(9);
        a.li(base, out as i64);
        for r in 1..9u8 {
            a.sw(Reg::int(r), base, 8 * r as i64);
        }
        a.halt();
        let trace = Interpreter::new(a.assemble().unwrap()).run(100_000).unwrap();
        prop_assert!(trace.completed());
        // The final stores carry the register values (masked to 32 bits).
        let stores: Vec<u64> = trace
            .records()
            .iter()
            .filter(|rec| trace.program().inst(rec.sidx).op == Op::Sw)
            .map(|rec| rec.value)
            .collect();
        prop_assert_eq!(stores.len(), 8);
        for r in 1..9usize {
            prop_assert_eq!(
                stores[r - 1],
                model[r] & 0xffff_ffff,
                "register r{} diverged", r
            );
        }
    }

    /// The memory image behaves as a byte map with last-write-wins.
    #[test]
    fn mem_image_matches_byte_map(
        writes in proptest::collection::vec(
            (0u64..0x10000, prop_oneof![Just(1u8), Just(2), Just(4), Just(8)], any::<u64>()),
            1..60
        ),
        probes in proptest::collection::vec(0u64..0x10100, 1..30),
    ) {
        let mut img = MemImage::new();
        let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for &(addr, size, value) in &writes {
            img.write(addr, size, value);
            for i in 0..size as u64 {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for &p in &probes {
            let expect = *model.get(&p).unwrap_or(&0);
            prop_assert_eq!(img.read_u8(p), expect, "byte at {:#x}", p);
        }
    }

    /// Wide reads assemble bytes little-endian from whatever writes
    /// preceded them.
    #[test]
    fn mem_image_wide_reads_compose(
        addr in 0u64..0x1000,
        bytes in proptest::collection::vec(any::<u8>(), 8),
    ) {
        let mut img = MemImage::new();
        for (i, &b) in bytes.iter().enumerate() {
            img.write_u8(addr + i as u64, b);
        }
        let v = img.read_u64(addr);
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(((v >> (8 * i)) & 0xff) as u8, b);
        }
    }
}

/// Listing round-trip: a program rendered with `Program::listing` and
/// re-parsed with `parse_program` yields the same instruction sequence.
mod listing_roundtrip {
    use mds::isa::{parse_program, Asm, Reg};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn roundtrip_preserves_instructions(
            body in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<i32>()), 1..30),
            iters in 1u8..5,
        ) {
            let mut a = Asm::new();
            let arr = a.alloc_data(4096, 64);
            let r = Reg::int;
            a.li(r(1), arr as i64);
            a.li(r(9), iters as i64);
            let top = a.label();
            a.bind(top);
            for &(kind, operand, imm) in &body {
                let rd = r(2 + operand % 6);
                let rs = r(2 + (operand / 7) % 6);
                match kind % 10 {
                    0 => a.add(rd, rs, r(1)),
                    1 => a.addi(rd, rs, imm as i64),
                    2 => a.lw(rd, r(1), (imm as i64).rem_euclid(512) * 4 % 2048),
                    3 => a.sw(rd, r(1), (imm as i64).rem_euclid(512) * 4 % 2048),
                    4 => a.mult(rd, rs),
                    5 => a.mflo(rd),
                    6 => a.sll(rd, rs, (imm as i64).rem_euclid(31)),
                    7 => a.ldc1(Reg::fp(operand % 8), r(1), (imm as i64).rem_euclid(256) * 8),
                    8 => a.add_d(Reg::fp(operand % 8), Reg::fp((operand / 3) % 8), Reg::fp(1)),
                    _ => a.nop(),
                }
            }
            a.addi(r(9), r(9), -1);
            a.bgtz(r(9), top);
            a.halt();
            let original = a.assemble().unwrap();

            let listing = original.listing();
            let reparsed = parse_program(&listing)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{listing}"));
            prop_assert_eq!(
                original.insts(),
                &reparsed.insts()[..original.len()],
                "listing:\n{}", listing
            );
        }
    }
}
