//! The recorded pipeline trace tells a coherent story: stages appear in
//! order for every committed instruction, and squashes explain repeats.

use mds::core::{CoreConfig, PipeStage, Policy, Simulator};
use mds::isa::Interpreter;
use mds::workloads::kernels;

fn stage_rank(s: PipeStage) -> u8 {
    match s {
        PipeStage::Fetch => 0,
        PipeStage::Dispatch => 1,
        PipeStage::AddrIssue => 2,
        PipeStage::Issue => 3,
        PipeStage::Execute => 4,
        PipeStage::Complete => 5,
        PipeStage::Commit => 6,
        PipeStage::Squash => 7,
    }
}

#[test]
fn stages_are_monotone_between_squashes() {
    let trace = Interpreter::new(kernels::figure7_recurrence(120, true).unwrap())
        .run(100_000)
        .unwrap();
    let mut cfg = CoreConfig::paper_128().with_policy(Policy::NasNaive);
    cfg.record_pipeline_trace = true;
    let result = Simulator::new(cfg).run(&trace);
    let pt = result.pipetrace.expect("tracing enabled");

    for seq in 0..trace.len() as u64 {
        let events = pt.of(seq);
        assert!(!events.is_empty(), "instruction {seq} left no events");
        // Within one attempt (between squashes), cycle and stage rank
        // both advance; a squash resets the attempt.
        let mut last: Option<(u8, u64)> = None;
        for e in &events {
            if e.stage == PipeStage::Squash {
                last = None;
                continue;
            }
            if let Some((rank, cycle)) = last {
                assert!(
                    stage_rank(e.stage) > rank,
                    "instruction {seq}: stage {:?} after rank {rank}",
                    e.stage
                );
                assert!(
                    e.cycle >= cycle,
                    "instruction {seq}: time went backwards {} -> {}",
                    cycle,
                    e.cycle
                );
            }
            last = Some((stage_rank(e.stage), e.cycle));
        }
        // Exactly one commit, and it is the final event.
        let commits = events
            .iter()
            .filter(|e| e.stage == PipeStage::Commit)
            .count();
        assert_eq!(commits, 1, "instruction {seq} committed {commits} times");
        assert_eq!(events.last().expect("non-empty").stage, PipeStage::Commit);
    }
}

#[test]
fn squashed_instructions_refetch() {
    let trace = Interpreter::new(kernels::figure7_recurrence(200, true).unwrap())
        .run(100_000)
        .unwrap();
    let mut cfg = CoreConfig::paper_128().with_policy(Policy::NasNaive);
    cfg.record_pipeline_trace = true;
    let result = Simulator::new(cfg).run(&trace);
    assert!(result.stats.misspeculations > 0, "the kernel must squash");
    let pt = result.pipetrace.expect("tracing enabled");

    let mut saw_refetch = false;
    for seq in 0..trace.len() as u64 {
        let events = pt.of(seq);
        let squashes = events
            .iter()
            .filter(|e| e.stage == PipeStage::Squash)
            .count();
        let fetches = events
            .iter()
            .filter(|e| e.stage == PipeStage::Fetch)
            .count();
        if squashes > 0 {
            assert!(
                fetches >= squashes,
                "instruction {seq}: {squashes} squashes but only {fetches} fetches"
            );
            saw_refetch = true;
        }
    }
    assert!(
        saw_refetch,
        "at least one instruction must have been squashed and refetched"
    );
}

#[test]
fn tracing_does_not_change_timing() {
    let trace = Interpreter::new(kernels::histogram(800, 64).unwrap())
        .run(100_000)
        .unwrap();
    let plain = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasSync)).run(&trace);
    let mut cfg = CoreConfig::paper_128().with_policy(Policy::NasSync);
    cfg.record_pipeline_trace = true;
    let traced = Simulator::new(cfg).run(&trace);
    assert_eq!(
        plain.stats, traced.stats,
        "observation must not perturb the machine"
    );
}
