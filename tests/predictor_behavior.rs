//! Cross-crate behavioral tests of the predictors, driven through real
//! simulations rather than table pokes.

use mds::core::{CoreConfig, Policy, Simulator};
use mds::frontend::{Bimodal, Combined, DirectionPredictor, Gselect};
use mds::isa::{Asm, Interpreter, Reg, Trace};
use mds::predict::{ConfidenceParams, Mdpt, MdptParams, SelectivePredictor};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

/// A loop whose single branch follows a fixed repeating pattern.
fn pattern_trace(pattern: &[bool], reps: usize) -> Trace {
    let mut a = Asm::new();
    let table = a.alloc_data(pattern.len() as u64 * 4, 8);
    for (i, &taken) in pattern.iter().enumerate() {
        a.init_u32(table + 4 * i as u64, taken as u32);
    }
    a.li(r(1), table as i64); // pattern base
    a.li(r(2), 0); // index
    a.li(r(9), (pattern.len() * reps) as i64);
    let top = a.label();
    a.bind(top);
    a.sll(r(3), r(2), 2);
    a.add(r(3), r(1), r(3));
    a.lw(r(4), r(3), 0);
    let skip = a.label();
    a.bgtz(r(4), skip); // the patterned branch
    a.bind(skip);
    a.addi(r(2), r(2), 1);
    a.slti(r(5), r(2), pattern.len() as i64);
    let nowrap = a.label();
    a.bgtz(r(5), nowrap);
    a.li(r(2), 0);
    a.bind(nowrap);
    a.addi(r(9), r(9), -1);
    a.bgtz(r(9), top);
    a.halt();
    Interpreter::new(a.assemble().unwrap())
        .run(1_000_000)
        .unwrap()
}

#[test]
fn combined_predictor_learns_periodic_patterns_in_simulation() {
    // A short periodic pattern is learnable by Gselect; accuracy should
    // be high once warm.
    let t = pattern_trace(&[true, true, false, true], 400);
    let res = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasNaive)).run(&t);
    let fe = res.stats.frontend;
    assert!(
        fe.accuracy() > 0.9,
        "period-4 pattern should be learned: accuracy {:.3} ({} mispredicts / {} branches)",
        fe.accuracy(),
        fe.dir_mispredicts,
        fe.branches
    );
}

#[test]
fn unit_predictors_agree_with_their_components() {
    // When bimodal and gselect agree, the combined prediction matches.
    let mut bim = Bimodal::new(4096);
    let mut gs = Gselect::new(4096, 5);
    let mut comb = Combined::new(4096, 4096, 4096, 5);
    for i in 0..200u64 {
        let pc = 0x1000 + (i % 7) * 4;
        let taken = i % 3 != 0;
        let (pb, pg) = (bim.predict(pc), gs.predict(pc));
        if pb == pg {
            assert_eq!(
                comb.predict(pc),
                pb,
                "combined must follow agreeing components"
            );
        }
        bim.update(pc, taken);
        gs.update(pc, taken);
        comb.update(pc, taken);
    }
}

#[test]
fn selective_predictor_only_arms_miss_speculating_loads() {
    let mut p = SelectivePredictor::new(ConfidenceParams::paper());
    for i in 0..100 {
        // 10 distinct loads, only one keeps mis-speculating.
        let pc = 0x2000 + (i % 10) * 4;
        if pc == 0x2000 {
            p.record_misspeculation(pc);
        }
        let _ = i;
    }
    assert!(p.predicts_dependence(0x2000));
    for k in 1..10u64 {
        assert!(!p.predicts_dependence(0x2000 + 4 * k));
    }
}

#[test]
fn mdpt_synonyms_survive_until_flush() {
    let mut m = Mdpt::new(MdptParams {
        flush_interval: Some(1000),
        ..MdptParams::paper()
    });
    m.record_violation(0x10, 0x20);
    m.maybe_flush(999);
    assert!(m.load_synonym(0x10).is_some());
    m.maybe_flush(1000);
    assert!(m.load_synonym(0x10).is_none());
}

#[test]
fn sync_policy_keeps_learning_across_mdpt_flushes() {
    // Even with a pathologically small flush interval, NAS/SYNC must
    // still complete and stay at least as fast as naive.
    let mut asm = Asm::new();
    let cell = asm.alloc_data(8, 8);
    asm.li(r(1), cell as i64);
    asm.li(r(9), 600);
    let top = asm.label();
    asm.bind(top);
    asm.lw(r(2), r(1), 0);
    asm.mult(r(2), r(2));
    asm.mflo(r(3));
    asm.addi(r(3), r(3), 1);
    asm.sw(r(3), r(1), 0);
    asm.addi(r(9), r(9), -1);
    asm.bgtz(r(9), top);
    asm.halt();
    let t = Interpreter::new(asm.assemble().unwrap())
        .run(100_000)
        .unwrap();

    let mut cfg = CoreConfig::paper_128().with_policy(Policy::NasSync);
    cfg.mdpt = MdptParams {
        flush_interval: Some(500),
        ..MdptParams::paper()
    };
    let flushy = Simulator::new(cfg).run(&t);
    let naive = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasNaive)).run(&t);
    assert_eq!(flushy.stats.committed, t.len() as u64);
    assert!(
        flushy.stats.misspeculations < naive.stats.misspeculations,
        "even a flushy MDPT should beat naive: {} vs {}",
        flushy.stats.misspeculations,
        naive.stats.misspeculations
    );
}

#[test]
fn return_address_stack_handles_deep_call_chains_in_simulation() {
    // Nested calls 3 deep, repeated: the RAS should predict all returns.
    let mut a = Asm::new();
    a.li(r(9), 200);
    let f1 = a.label();
    let f2 = a.label();
    let f3 = a.label();
    let top = a.label();
    let over = a.label();
    a.j(over);
    a.bind(f3);
    a.addi(r(3), r(3), 1);
    a.jr(Reg::RA);
    a.bind(f2);
    a.mov(r(20), Reg::RA);
    a.jal(f3);
    a.mov(Reg::RA, r(20));
    a.jr(Reg::RA);
    a.bind(f1);
    a.mov(r(21), Reg::RA);
    a.jal(f2);
    a.mov(Reg::RA, r(21));
    a.jr(Reg::RA);
    a.bind(over);
    a.bind(top);
    a.jal(f1);
    a.addi(r(9), r(9), -1);
    a.bgtz(r(9), top);
    a.halt();
    let t = Interpreter::new(a.assemble().unwrap())
        .run(100_000)
        .unwrap();
    let res = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasNaive)).run(&t);
    let fe = res.stats.frontend;
    assert!(
        fe.indirects > 500,
        "returns must be exercised: {}",
        fe.indirects
    );
    let rate = fe.target_mispredicts as f64 / fe.indirects as f64;
    assert!(
        rate < 0.05,
        "RAS should nail nested returns: {} / {}",
        fe.target_mispredicts,
        fe.indirects
    );
}
