//! Cross-crate integration tests: the paper's qualitative orderings
//! must hold end-to-end on the synthetic suite.

use mds::core::{CoreConfig, PipeStage, Policy, Simulator, WindowModel};
use mds::isa::{Asm, Interpreter, Reg};
use mds::workloads::{Benchmark, SuiteParams};

fn run(b: Benchmark, policy: Policy) -> mds::core::SimResult {
    let trace = b.trace(&SuiteParams::test()).expect("trace");
    Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(&trace)
}

#[test]
fn every_policy_commits_the_whole_trace() {
    let trace = Benchmark::Li.trace(&SuiteParams::tiny()).unwrap();
    let policies = Policy::ALL.into_iter().chain([Policy::NasStoreSets]);
    for policy in policies {
        let r = Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(&trace);
        assert_eq!(r.stats.committed, trace.len() as u64, "{policy}");
        assert_eq!(
            r.stats.committed_loads,
            trace.counts().loads,
            "{policy}: committed loads"
        );
        assert_eq!(
            r.stats.committed_stores,
            trace.counts().stores,
            "{policy}: committed stores"
        );
    }
}

#[test]
fn non_speculative_policies_never_missspeculate() {
    for b in [Benchmark::Compress, Benchmark::Su2cor] {
        for policy in [Policy::NasNo, Policy::NasOracle, Policy::AsNo] {
            let r = run(b, policy);
            assert_eq!(r.stats.misspeculations, 0, "{b} {policy}");
            assert_eq!(r.stats.squashed, 0, "{b} {policy}");
        }
    }
}

#[test]
fn oracle_dominates_no_speculation() {
    for b in [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Swim,
        Benchmark::Su2cor,
    ] {
        let no = run(b, Policy::NasNo);
        let oracle = run(b, Policy::NasOracle);
        assert!(
            oracle.ipc() >= no.ipc() * 0.99,
            "{b}: oracle {:.3} vs no-spec {:.3}",
            oracle.ipc(),
            no.ipc()
        );
    }
}

#[test]
fn naive_beats_no_speculation_but_not_oracle() {
    for b in [Benchmark::Compress, Benchmark::Su2cor] {
        let no = run(b, Policy::NasNo);
        let nav = run(b, Policy::NasNaive);
        let oracle = run(b, Policy::NasOracle);
        assert!(
            nav.ipc() >= no.ipc() * 0.95,
            "{b}: naive should roughly dominate no-spec"
        );
        assert!(
            nav.ipc() <= oracle.ipc() * 1.02,
            "{b}: naive cannot beat oracle"
        );
    }
}

#[test]
fn sync_suppresses_misspeculation_and_recovers_performance() {
    for b in [Benchmark::Compress, Benchmark::Gcc] {
        let nav = run(b, Policy::NasNaive);
        let sync = run(b, Policy::NasSync);
        let oracle = run(b, Policy::NasOracle);
        assert!(
            sync.stats.misspeculation_rate() < nav.stats.misspeculation_rate() / 3.0,
            "{b}: sync rate {:.5} vs naive {:.5}",
            sync.stats.misspeculation_rate(),
            nav.stats.misspeculation_rate()
        );
        // SYNC approaches the oracle (the paper's Figure 6 headline).
        let captured = (sync.ipc() - nav.ipc()) / (oracle.ipc() - nav.ipc()).max(1e-9);
        assert!(
            captured > 0.5 || oracle.ipc() - nav.ipc() < 0.05,
            "{b}: sync captured only {captured:.2} of the oracle gain"
        );
    }
}

#[test]
fn address_scheduler_virtually_eliminates_misspeculation() {
    for b in [Benchmark::Compress, Benchmark::Hydro2d] {
        let nas = run(b, Policy::NasNaive);
        let asn = run(b, Policy::AsNaive);
        assert!(
            asn.stats.misspeculation_rate() <= nas.stats.misspeculation_rate() / 5.0
                || asn.stats.misspeculations <= 2,
            "{b}: AS/NAV rate {:.5} vs NAS/NAV {:.5}",
            asn.stats.misspeculation_rate(),
            nas.stats.misspeculation_rate()
        );
    }
}

#[test]
fn split_window_breaks_address_scheduling() {
    let trace = Benchmark::Compress.trace(&SuiteParams::test()).unwrap();
    let cont = Simulator::new(CoreConfig::paper_128().with_policy(Policy::AsNaive)).run(&trace);
    let split = Simulator::new(
        CoreConfig::paper_128()
            .with_policy(Policy::AsNaive)
            .with_window_model(WindowModel::Split {
                units: 4,
                task_size: 16,
            }),
    )
    .run(&trace);
    assert!(
        split.stats.misspeculations > cont.stats.misspeculations,
        "split {} must exceed continuous {}",
        split.stats.misspeculations,
        cont.stats.misspeculations
    );
    assert_eq!(split.stats.committed, trace.len() as u64);
}

#[test]
fn scheduler_latency_costs_performance() {
    let trace = Benchmark::Vortex.trace(&SuiteParams::test()).unwrap();
    let ipc_at = |lat| {
        Simulator::new(
            CoreConfig::paper_128()
                .with_policy(Policy::AsNaive)
                .with_addr_sched_latency(lat),
        )
        .run(&trace)
        .ipc()
    };
    let (l0, l2) = (ipc_at(0), ipc_at(2));
    assert!(
        l0 >= l2 * 0.99,
        "0-cycle {l0:.3} should not lose to 2-cycle {l2:.3}"
    );
}

/// Pins the `NAS/SYNC` release rule of Section 3.5: a synchronized load
/// issues exactly one cycle after the store it waits on *issues* (the
/// store's execution becomes visible at `issue_at + 1`). The gate states
/// this as `issued && now > issue_at`, which for stores is identical to
/// the `executed && exec_at <= now` predicate the other gates use — this
/// test keeps either phrasing from drifting to a different cycle.
#[test]
fn sync_released_one_cycle_after_store_issue() {
    let r = |n: u8| Reg::int(n);
    let mut a = Asm::new();
    let cell = a.alloc_data(8, 8);
    a.init_u32(cell, 5);
    a.li(r(1), cell as i64);
    a.li(r(3), 1);
    a.li(r(9), 40);
    let top = a.label();
    a.bind(top);
    a.lw(r(2), r(1), 0);
    a.mult(r(2), r(3));
    a.mflo(r(2)); // slow data chain feeding the store
    a.sw(r(2), r(1), 0);
    a.lw(r(4), r(1), 0); // same PC every iteration: MDPT trains on it
    a.addi(r(9), r(9), -1);
    a.bgtz(r(9), top);
    a.halt();
    let trace = Interpreter::new(a.assemble().unwrap())
        .run(100_000)
        .unwrap();
    let res = Simulator::new(
        CoreConfig::paper_128()
            .with_policy(Policy::NasSync)
            .with_pipetrace(true),
    )
    .run(&trace);
    assert!(
        res.stats.misspeculations > 0,
        "the recurrence must violate at least once to train the MDPT"
    );
    let pt = res.pipetrace.expect("pipetrace requested");
    let issue_of = |seq: u64| {
        pt.of(seq)
            .iter()
            .find(|e| e.stage == PipeStage::Issue)
            .map(|e| e.cycle)
    };
    // Gap between each store's issue and the following (dependent,
    // same-address) load's issue. Early iterations speculate and squash;
    // once trained, every load is released exactly one cycle after its
    // store issues.
    let gaps: Vec<i64> = (0..trace.len() as u64)
        .filter(|&seq| trace.inst(seq as usize).op.is_store())
        .filter_map(|seq| Some(issue_of(seq + 1)? as i64 - issue_of(seq)? as i64))
        .collect();
    let trained = &gaps[gaps.len() - 20..];
    assert!(
        trained.iter().all(|&g| g == 1),
        "trained SYNC loads must issue exactly one cycle after their store: {trained:?}"
    );
}

#[test]
fn window_size_matters_more_with_oracle() {
    // Figure 1's second observation: growing the window helps much more
    // when load/store parallelism is exploited.
    let trace = Benchmark::Su2cor.trace(&SuiteParams::test()).unwrap();
    let ipc = |cfg: CoreConfig| Simulator::new(cfg).run(&trace).ipc();
    let no_64 = ipc(CoreConfig::paper_64().with_policy(Policy::NasNo));
    let no_128 = ipc(CoreConfig::paper_128().with_policy(Policy::NasNo));
    let or_64 = ipc(CoreConfig::paper_64().with_policy(Policy::NasOracle));
    let or_128 = ipc(CoreConfig::paper_128().with_policy(Policy::NasOracle));
    let no_gain = no_128 / no_64;
    let or_gain = or_128 / or_64;
    assert!(
        or_gain >= no_gain * 0.95,
        "oracle should benefit at least as much from a bigger window: \
         no-spec {no_gain:.3} vs oracle {or_gain:.3}"
    );
}
