//! The shipped assembly files parse, run, and behave as documented.

use mds::analysis::DepProfile;
use mds::core::{CoreConfig, Policy, Simulator};
use mds::isa::{parse_program, Interpreter};

#[test]
fn figure7_asm_file_round_trips_through_the_whole_stack() {
    let source =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/figure7.s"))
            .expect("example file present");
    let program = parse_program(&source).expect("parses");
    let trace = Interpreter::new(program).run(1_000_000).expect("runs");
    assert!(trace.completed());
    assert_eq!(trace.counts().loads, 511);
    assert_eq!(trace.counts().stores, 511);

    // Its dependence profile: one static pair, all loads dependent but
    // the first.
    let profile = DepProfile::build(&trace);
    assert_eq!(profile.static_pairs, 1);
    assert_eq!(profile.dependent_loads, 510);
    assert!(profile.window_resident_fraction(128) > 0.9);

    // And the documented policy behaviour: naive speculation trips over
    // the recurrence; synchronization learns it.
    let nav = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasNaive)).run(&trace);
    let sync = Simulator::new(CoreConfig::paper_128().with_policy(Policy::NasSync)).run(&trace);
    assert!(nav.stats.misspeculations > 100);
    assert!(sync.stats.misspeculations <= 3);
    assert!(sync.ipc() > nav.ipc());
}

#[test]
fn listing_of_a_parsed_file_reparses() {
    let source =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/figure7.s"))
            .expect("example file present");
    let program = parse_program(&source).expect("parses");
    let listing = program.listing();
    let again = parse_program(&listing).expect("listing reparses");
    assert_eq!(program.insts(), again.insts());
}
