//! # mds — memory dependence speculation in continuous-window superscalar processors
//!
//! A from-scratch Rust reproduction of Moshovos & Sohi, *"Memory Dependence
//! Speculation Tradeoffs in Centralized, Continuous-Window Superscalar
//! Processors"* (HPCA 2000).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`isa`] — MIPS-like ISA, assembler, functional interpreter, traces.
//! * [`mem`] — cycle-level cache hierarchy and memory system.
//! * [`frontend`] — branch predictors and fetch model.
//! * [`predict`] — memory dependence predictors (selective, store-barrier,
//!   MDPT, store-set).
//! * [`core`] — the out-of-order superscalar core with every load/store
//!   scheduling policy the paper studies, plus the split-window model.
//! * [`workloads`] — the synthetic SPEC'95-like benchmark suite.
//! * [`harness`] — experiment runners regenerating every table and figure.
//! * [`analysis`] — trace analysis: dependence profiles, footprints,
//!   stride statistics.
//! * [`obs`] — observability: metrics registry, log2 histograms,
//!   CPI-stack attribution, JSONL event tracing.
//!
//! # Examples
//!
//! Measure the IPC gap between no speculation and oracle dependence
//! information on one benchmark (the essence of the paper's Figure 1):
//!
//! ```
//! use mds::core::{CoreConfig, Policy, Simulator};
//! use mds::workloads::{Benchmark, SuiteParams};
//!
//! let trace = Benchmark::Compress.trace(&SuiteParams::tiny())?;
//! let base = CoreConfig::paper_128();
//!
//! let no_spec = Simulator::new(base.clone().with_policy(Policy::NasNo)).run(&trace);
//! let oracle = Simulator::new(base.with_policy(Policy::NasOracle)).run(&trace);
//! assert!(oracle.ipc() >= no_spec.ipc());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mds_analysis as analysis;
pub use mds_core as core;
pub use mds_frontend as frontend;
pub use mds_harness as harness;
pub use mds_isa as isa;
pub use mds_mem as mem;
pub use mds_obs as obs;
pub use mds_predict as predict;
pub use mds_workloads as workloads;
