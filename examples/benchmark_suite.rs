//! Run a slice of the synthetic SPEC'95 suite through the main policy
//! comparison (the essence of Figures 2 and 6).
//!
//! ```text
//! cargo run --release --example benchmark_suite
//! ```

use mds::core::Policy;
use mds::harness::{experiments, Runner, Suite};
use mds::workloads::{Benchmark, SuiteParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmarks = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Vortex,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Mgrid,
    ];
    println!("generating {} synthetic benchmarks...", benchmarks.len());
    let runner = Runner::new(Suite::generate(&benchmarks, &SuiteParams::test())?);

    // Table 1: does the synthetic mix track the paper?
    println!("\n{}", experiments::table1::run(&runner).render());

    // Figure 2: no speculation vs oracle vs naive speculation.
    println!("{}", experiments::fig2::run(&runner).render());

    // Figure 6: speculation/synchronization.
    println!("{}", experiments::fig6::run(&runner).render());

    // Raw per-policy IPCs for one benchmark (NAS/ORACLE and NAS/NAV are
    // already memoized from the figures above).
    println!("per-policy IPC on 129.compress:");
    for policy in Policy::ALL {
        let cfg = mds::core::CoreConfig::paper_128().with_policy(policy);
        let results = runner.run(&cfg);
        let (_, r) = results
            .iter()
            .find(|(b, _)| *b == Benchmark::Compress)
            .expect("compress is in the suite");
        println!("  {:11} {:5.2}", policy.paper_name(), r.ipc());
    }
    let stats = runner.stats();
    println!(
        "({} simulations, {} cache hits this run)",
        stats.simulations, stats.cache_hits
    );
    Ok(())
}
