//! Section 3.7: why a 0-cycle address-based scheduler stops preventing
//! mis-speculations when the window is split over independent units.
//!
//! Builds the unrolled recurrence of Figure 7 as a split window sees it
//! (load early in each task, store with late data at the end of the
//! previous task) and runs `AS/NAV` under both window models.
//!
//! ```text
//! cargo run --release --example split_vs_continuous
//! ```

use mds::core::{CoreConfig, Policy, Simulator, WindowModel};
use mds::isa::{Asm, Interpreter, Reg, Trace};

/// One 8-instruction "iteration" per task: `a[j+1] = 3*a[j] + 1`.
fn unrolled_recurrence(steps: i64) -> Result<Trace, Box<dyn std::error::Error>> {
    let mut a = Asm::new();
    let arr = a.alloc_data(4 * (steps as u64 + 2), 8);
    let (base, three, v) = (Reg::int(1), Reg::int(2), Reg::int(4));
    a.li(base, arr as i64);
    a.li(three, 3);
    a.li(Reg::int(3), 17);
    a.sw(Reg::int(3), base, 0);
    a.nop();
    a.nop();
    a.nop();
    a.nop(); // align the first step to a task boundary
    for j in 0..steps {
        a.lw(v, base, 4 * j); // load, early in the task
        a.mult(v, three); // slow data chain
        a.mflo(v);
        a.addi(v, v, 1);
        a.addi(Reg::int(10), Reg::int(10), 1);
        a.addi(Reg::int(11), Reg::int(11), 1);
        a.addi(Reg::int(12), Reg::int(12), 1);
        a.sw(v, base, 4 * (j + 1)); // store, late in the task
    }
    a.halt();
    Ok(Interpreter::new(a.assemble()?).run(1_000_000)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = unrolled_recurrence(2_000)?;
    println!(
        "unrolled recurrence: {} dynamic instructions\n",
        trace.len()
    );

    let models = [
        ("continuous (centralized)", WindowModel::Continuous),
        (
            "split, 2 units",
            WindowModel::Split {
                units: 2,
                task_size: 8,
            },
        ),
        (
            "split, 4 units",
            WindowModel::Split {
                units: 4,
                task_size: 8,
            },
        ),
    ];
    println!(
        "{:28} {:>6} {:>12} {:>10}",
        "window model", "IPC", "missspec", "squashed"
    );
    for (name, model) in models {
        let cfg = CoreConfig::paper_128()
            .with_policy(Policy::AsNaive)
            .with_window_model(model);
        let r = Simulator::new(cfg).run(&trace);
        println!(
            "{:28} {:6.2} {:12} {:10}",
            name,
            r.ipc(),
            r.stats.misspeculations,
            r.stats.squashed
        );
    }
    println!(
        "\nThe continuous window fetches the store before the load, so the\n\
         load always sees the posted address and waits. Under the split\n\
         window a later unit's load accesses memory before the earlier\n\
         unit's store is even fetched — no address scheduler can help\n\
         (paper, Section 3.7 / Figure 7)."
    );
    Ok(())
}
