//! The paper's Figure 7 loop — `a[i] = a[i-1] + k` — run under every
//! scheduling policy. Shows naive speculation tripping over the
//! loop-carried memory dependence, the predictors learning it, and the
//! oracle ceiling.
//!
//! ```text
//! cargo run --release --example recurrence_loop
//! ```

use mds::core::{CoreConfig, Policy, Simulator};
use mds::isa::{Asm, Interpreter, Reg, Trace};

fn figure7_trace(iters: i64) -> Result<Trace, Box<dyn std::error::Error>> {
    let mut a = Asm::new();
    let arr = a.alloc_data(8 * (iters as u64 + 2), 8);
    let (i, n, base, k, t, v, c) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    a.li(i, 1);
    a.li(n, iters + 1);
    a.li(base, arr as i64);
    a.li(k, 3);
    let top = a.label();
    a.bind(top);
    a.sll(t, i, 3); // t = i * 8
    a.add(t, base, t);
    a.lw(v, t, -8); // load a[i-1]  <-- depends on last iteration's store
    a.mult(v, k); // slow data chain, as in pointer-heavy codes
    a.mflo(v);
    a.sw(v, t, 0); // store a[i]
    a.addi(i, i, 1);
    a.slt(c, i, n);
    a.bgtz(c, top);
    a.halt();
    Ok(Interpreter::new(a.assemble()?).run(1_000_000)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = figure7_trace(2_000)?;
    println!(
        "Figure 7 recurrence: {} dynamic instructions, {} loads\n",
        trace.len(),
        trace.counts().loads
    );
    println!(
        "{:11}  {:>6}  {:>12}  {:>10}  {:>9}",
        "policy", "IPC", "missspec", "squashed", "forwarded"
    );
    let policies = Policy::ALL.into_iter().chain([Policy::NasStoreSets]);
    for policy in policies {
        let cfg = CoreConfig::paper_128().with_policy(policy);
        let r = Simulator::new(cfg).run(&trace);
        println!(
            "{:11}  {:6.2}  {:12}  {:10}  {:9}",
            policy.paper_name(),
            r.ipc(),
            r.stats.misspeculations,
            r.stats.squashed,
            r.stats.forwarded_loads
        );
    }
    println!(
        "\nExpected shape (paper sections 3.3-3.6): NAS/NAV mis-speculates on\n\
         every few iterations; NAS/SYNC and NAS/SSET learn the dependence and\n\
         approach NAS/ORACLE; AS/NAV sees the store address in time and avoids\n\
         mis-speculation entirely."
    );
    Ok(())
}
