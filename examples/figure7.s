; The paper's Figure 7 loop, as assembly source for the `profile` tool:
;
;   cargo run --release -p mds-harness --bin profile -- --asm examples/figure7.s --policies
;
; for (i = 1; i < 512; i++)  a[i] = a[i-1] * 3;

.alloc arr 4096 8
.word  arr 17                 ; seed a[0]

        li   r3, arr
        li   r1, 1
        li   r2, 512
        li   r4, 3

top:    sll  r5, r1, 2        ; r5 = i * 4
        add  r5, r3, r5
        lw   r6, -4(r5)       ; load a[i-1]  <-- last iteration's store
        mult r6, r4           ; slow data chain
        mflo r6
        sw   r6, 0(r5)        ; store a[i]
        addi r1, r1, 1
        slt  r7, r1, r2
        bgtz r7, top
        halt
