//! Pipeline diagram viewer: run the Figure 7 recurrence with pipeline
//! tracing enabled and print the classic per-instruction timeline under
//! two policies — watch naive speculation squash (`s`) and re-run, and
//! synchronization hold the load back instead.
//!
//! ```text
//! cargo run --release --example pipeline_view
//! ```
//!
//! Stage codes: F fetch, D dispatch, A address µop, I issue, X memory
//! access, W writeback, C commit, s squash.

use mds::core::{CoreConfig, Policy, Simulator};
use mds::isa::{parse_program, Interpreter};

const LOOP: &str = "
; a[i] = a[i-1] * 3  -- a tight memory recurrence
.alloc arr 1024 8
.word  arr 17
        li   r3, arr
        li   r1, 1
        li   r2, 24
        li   r4, 3
top:    sll  r5, r1, 2
        add  r5, r3, r5
        lw   r6, -4(r5)
        mult r6, r4
        mflo r6
        sw   r6, 0(r5)
        addi r1, r1, 1
        slt  r7, r1, r2
        bgtz r7, top
        halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(LOOP)?;
    let trace = Interpreter::new(program).run(100_000)?;

    for policy in [Policy::NasNaive, Policy::NasSync, Policy::NasOracle] {
        let mut cfg = CoreConfig::paper_128().with_policy(policy);
        cfg.record_pipeline_trace = true;
        let result = Simulator::new(cfg).run(&trace);
        let pt = result.pipetrace.as_ref().expect("tracing enabled");
        println!(
            "=== {} — IPC {:.2}, {} mis-speculations ===",
            policy.paper_name(),
            result.ipc(),
            result.stats.misspeculations
        );
        // Show two loop iterations from the middle of the run.
        println!("{}", pt.render(40..58));
    }
    println!("stage codes: F fetch, D dispatch, I issue, X memory access, W writeback, C commit, s squash");
    Ok(())
}
