//! Quickstart: assemble a small program, execute it functionally, and
//! replay it on the timing core under two scheduling policies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mds::core::{CoreConfig, Policy, Simulator};
use mds::isa::{Asm, Interpreter, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop that stores a running sum and immediately reloads it —
    // a memory dependence the scheduler must respect.
    let mut a = Asm::new();
    let cell = a.alloc_data(8, 8);
    let (i, sum, base) = (Reg::int(1), Reg::int(2), Reg::int(3));
    a.li(i, 1000);
    a.li(base, cell as i64);
    let top = a.label();
    a.bind(top);
    a.lw(sum, base, 0); // load the running sum
    a.add(sum, sum, i); // add the counter
    a.sw(sum, base, 0); // store it back
    a.addi(i, i, -1);
    a.bgtz(i, top);
    a.halt();
    let program = a.assemble()?;

    // Functional execution produces the dynamic trace.
    let trace = Interpreter::new(program).run(1_000_000)?;
    println!(
        "trace: {} dynamic instructions ({} loads, {} stores)",
        trace.len(),
        trace.counts().loads,
        trace.counts().stores
    );

    // Replay it under "no speculation" and "oracle dependence knowledge".
    for policy in [
        Policy::NasNo,
        Policy::NasNaive,
        Policy::NasSync,
        Policy::NasOracle,
    ] {
        let result = Simulator::new(CoreConfig::paper_128().with_policy(policy)).run(&trace);
        println!(
            "{:11}  IPC {:5.2}   mis-speculations {:4}   cycles {}",
            policy.paper_name(),
            result.ipc(),
            result.stats.misspeculations,
            result.stats.cycles
        );
    }
    Ok(())
}
